""":class:`PPScheme` -- the user-facing facade of the paper's system.

Bundles the memory graph (Section 2), the addressing layer (Section 4)
and the access protocol (Section 3) behind a small API:

>>> scheme = PPScheme(q=2, n=5)           # N = 1023, M = 5456, 3 copies
>>> idx = scheme.random_request_set(512, seed=0)
>>> store = scheme.make_store()
>>> w = scheme.write(idx, values=idx, store=store, time=1)
>>> r = scheme.read(idx, store=store, time=2)
>>> bool((r.values == idx).all())
True

For ``q = 2`` and odd ``n`` the indexing is the paper's O(log N)
on-the-fly computation; for other parameters (the paper defers them to
its extended version) a precomputed enumeration table stands in, which
is only feasible at validation scale and is flagged accordingly.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter

import numpy as np

import repro.obs as _obs
from repro.core.addressing import AddressLayer, batched_slots
from repro.core.graph import MemoryGraph
from repro.core.protocol import AccessResult, run_access_protocol
from repro.mpc.memory import SharedCopyStore
from repro.pgl.matrix import Mat, pgl2_mul

__all__ = ["EnumeratedAddressing", "PPScheme"]


class EnumeratedAddressing:
    """Table-based fallback indexing for parameters outside Section 4.

    Enumerates every variable coset once (O(q^{3n}) preprocessing,
    validation scale only) and then answers unrank/rank by array/dict
    lookup.  Interface-compatible with
    :class:`~repro.core.addressing.AddressLayer` for the methods the
    scheme uses.
    """

    def __init__(self, graph: MemoryGraph):
        if graph.M > 2_000_000:
            raise ValueError(
                f"enumerated addressing infeasible for M = {graph.M}; "
                "use q = 2 with odd n for the O(log N) layer"
            )
        self.graph = graph
        self.M = graph.M
        mats = graph.all_variable_matrices()
        self._mats = mats
        self._index = {graph.variables.key(m): i for i, m in enumerate(mats)}
        self._arr = np.array(mats, dtype=np.int64)
        self._h0_elements = graph.H0.elements()

    def unrank(self, index: int) -> Mat:
        """Canonical matrix of variable ``index`` (table lookup)."""
        return self._mats[index]

    def rank(self, m: Mat) -> int:
        """Index of the coset of ``m`` (canonicalize + dict lookup)."""
        return self._index[self.graph.variables.key(m)]

    def vunrank(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized unrank via the enumeration table."""
        indices = np.asarray(indices, dtype=np.int64)
        if _obs.enabled():
            led = _obs.ledger()
            if led is not None:
                led.count("addr.table", int(indices.size))
        rows = self._arr[indices]
        return rows[:, 0], rows[:, 1], rows[:, 2], rows[:, 3]

    def slot_of(self, A: Mat, module_index: int) -> int:
        """Same Lemma-4 slot computation as the real layer."""
        from repro.pgl.matrix import pgl2_inv

        graph = self.graph
        K = graph.F
        B = graph.modules.rep_of(module_index)
        C = pgl2_mul(K, pgl2_inv(K, B), A)
        for h in self._h0_elements:
            a, b, c, d = pgl2_mul(K, C, h)
            if c == 0 and d == 1 and a == 1:
                k = int(graph.p_gamma_inverse[b])
                if k >= 0:
                    return k
        raise ValueError(f"variable {A} has no copy in module {module_index}")

    def locate(self, index: int) -> list[tuple[int, int]]:
        """Physical (module, slot) of each copy of variable ``index``."""
        A = self.unrank(index)
        out = []
        for mat in self.graph.copy_matrices(A):
            u = self.graph.modules.index_of(mat)
            out.append((u, self.slot_of(A, u)))
        return out

    def vslots(
        self,
        mats: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        modules: np.ndarray,
    ) -> np.ndarray:
        """Batched Lemma-4 slots (same kernel as the real layer)."""
        return batched_slots(self.graph, mats, modules)

    def vlocate(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`locate`: ``(modules, slots)`` arrays."""
        mats = self.vunrank(indices)
        modules = self.graph.vgamma_variables(mats)
        return modules, self.vslots(mats, modules)


class PPScheme:
    """The Pietracaprina-Preparata memory organization, end to end.

    Parameters
    ----------
    q:
        Even prime power (power of 2); copies per variable = q + 1.
    n:
        Extension degree >= 3.  The O(log N) addressing needs q = 2 and
        n odd; other parameters fall back to enumerated addressing.
    arbitration, seed:
        Default module arbitration for the protocol runs.
    """

    def __init__(self, q: int = 2, n: int = 5, arbitration: str = "lowest", seed: int = 0):
        with _obs.span(
            "scheme.build", timer="scheme.build_seconds", q=q, n=n
        ) as sp:
            self.graph = MemoryGraph(q, n)
            self.q = q
            self.n = n
            self.N = self.graph.N
            self.M = self.graph.M
            self.copies_per_variable = self.graph.copies_per_variable
            self.majority = self.graph.majority
            self.module_capacity = self.graph.module_degree
            self.arbitration = arbitration
            self.seed = seed
            if q == 2 and n % 2 == 1:
                self.addressing: AddressLayer | EnumeratedAddressing = AddressLayer(
                    self.graph
                )
                self.addressing_kind = "explicit-O(logN)"
            else:
                self.addressing = EnumeratedAddressing(self.graph)
                self.addressing_kind = "enumerated-fallback"
            sp.add(N=self.N, M=self.M, addressing=self.addressing_kind)
        if _obs.metrics_enabled():
            _obs.metrics().counter("scheme.builds").inc()
        if _obs.enabled():
            # bus-only topology announcement for live health consumers
            # (recorded traces already carry the scheme.build span)
            b = _obs.bus()
            if b is not None:
                b.publish(
                    "scheme.topology",
                    {
                        "q": self.q,
                        "n": self.n,
                        "N": self.N,
                        "M": self.M,
                        "copies": self.q + 1,
                        "majority": self.q // 2 + 1,
                    },
                )

    # -- placement -------------------------------------------------------

    def locate(self, index: int) -> list[tuple[int, int]]:
        """Physical (module, slot) of every copy of one variable."""
        return self.addressing.locate(index)

    def module_ids_for(self, indices: np.ndarray) -> np.ndarray:
        """``(V, q+1)`` module ids of the copies of each requested
        variable (vectorized unrank + Lemma 1 kernel)."""
        indices = np.asarray(indices, dtype=np.int64)
        if not _obs.enabled():
            mats = self.addressing.vunrank(indices)
            return self.graph.vgamma_variables(mats)
        with self._observe_placement(indices.size, slots=False):
            mats = self.addressing.vunrank(indices)
            return self.graph.vgamma_variables(mats)

    def placement_for(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(modules, slots)`` -- both ``(V, q+1)`` -- for the requested
        variables, fully vectorized (Lemma 1 + Lemma 4)."""
        indices = np.asarray(indices, dtype=np.int64)
        if not _obs.enabled():
            mats = self.addressing.vunrank(indices)
            modules = self.graph.vgamma_variables(mats)
            return modules, self._vslots(mats, modules)
        with self._observe_placement(indices.size, slots=True):
            mats = self.addressing.vunrank(indices)
            modules = self.graph.vgamma_variables(mats)
            return modules, self._vslots(mats, modules)

    def _observe_placement(self, count: int, slots: bool):
        """Span + metrics wrapper for the address-computation paths."""
        if _obs.metrics_enabled():
            _obs.metrics().counter("address.placement_calls").inc()
        return _obs.span(
            "address.placement",
            timer="address.placement_seconds",
            count=int(count),
            slots=slots,
        )

    def _vslots(
        self,
        mats: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        modules: np.ndarray,
    ) -> np.ndarray:
        """Vectorized Lemma-4 slot computation (delegates to the
        addressing layer's shared batched coset lookup)."""
        return self.addressing.vslots(mats, modules)

    # -- storage -----------------------------------------------------------

    def make_store(self) -> SharedCopyStore:
        """A fresh timestamped store shaped for this scheme
        (N modules x q^{n-1} slots)."""
        return SharedCopyStore(self.N, self.module_capacity)

    # -- access operations ---------------------------------------------------

    def access(
        self,
        indices: np.ndarray,
        op: str = "count",
        *,
        store: SharedCopyStore | None = None,
        values: np.ndarray | None = None,
        time: int = 0,
        arbitration: str | None = None,
        seed: int | None = None,
        collect_history: bool = True,
        failed_modules: np.ndarray | None = None,
        allow_partial: bool = False,
        grey_modules: np.ndarray | None = None,
        retry_limit: int | None = None,
        engine: str | None = None,
    ) -> AccessResult:
        """Run the Section-3 protocol for a batch of distinct variables.

        ``op='count'`` needs no store; ``'read'``/``'write'`` thread the
        physical slots through to the timestamped cells.
        ``failed_modules``/``grey_modules``/``retry_limit`` inject
        module faults and bound the degraded-mode retries (see
        :func:`~repro.core.protocol.run_access_protocol`).  ``engine``
        selects the batch executor ('vector' | 'scalar', see
        :mod:`repro.core.engine`).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if np.unique(indices).size != indices.size:
            raise ValueError("requests must address distinct variables")
        led = _obs.ledger() if _obs.enabled() else None
        if led is not None:
            t0 = _perf_counter()
            gf0 = led.gf.as_dict()
        if op == "count":
            modules = self.module_ids_for(indices)
            slots = None
        else:
            modules, slots = self.placement_for(indices)
        if led is not None:
            led.note_addressing(int(indices.size), _perf_counter() - t0, gf0)
        return run_access_protocol(
            modules,
            self.N,
            self.majority,
            op=op,
            slots=slots,
            store=store,
            values=values,
            time=time,
            arbitration=arbitration or self.arbitration,
            seed=self.seed if seed is None else seed,
            collect_history=collect_history,
            failed_modules=failed_modules,
            allow_partial=allow_partial,
            grey_modules=grey_modules,
            retry_limit=retry_limit,
            var_ids=indices,
            engine=engine,
        )

    def write(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        store: SharedCopyStore,
        time: int,
        **kw: object,
    ) -> AccessResult:
        """Majority write of ``values`` into the requested variables."""
        return self.access(indices, op="write", store=store, values=values, time=time, **kw)

    def read(
        self, indices: np.ndarray, store: SharedCopyStore, time: int, **kw: object
    ) -> AccessResult:
        """Majority read; ``result.values[i]`` is the freshest written
        value of ``indices[i]`` (or -1 if never written)."""
        return self.access(indices, op="read", store=store, time=time, **kw)

    # -- workload helpers --------------------------------------------------------

    def random_request_set(self, count: int, seed: int = 0) -> np.ndarray:
        """``count`` distinct variable indices, uniform, seeded.

        Scales to the billion-variable instances (n = 11): when M is
        huge, rejection sampling replaces the permutation/choice path
        (whose memory is Theta(M)).
        """
        if count > self.M:
            raise ValueError(f"cannot request {count} distinct of {self.M} variables")
        rng = np.random.default_rng(seed)
        if self.M > 50_000_000:
            chunks: list[np.ndarray] = []
            have = 0
            while have < count:
                raw = rng.integers(0, self.M, int(1.2 * (count - have)) + 16)
                chunks.append(raw)
                have = np.unique(np.concatenate(chunks)).size
            out = np.unique(np.concatenate(chunks))[:count]
            return rng.permutation(out).astype(np.int64)
        if count * 4 >= self.M:
            return rng.permutation(self.M)[:count].astype(np.int64)
        return rng.choice(self.M, size=count, replace=False).astype(np.int64)

    def describe(self) -> dict:
        """Structural summary including the addressing backend."""
        d = self.graph.describe()
        d["addressing"] = self.addressing_kind
        return d

    def __repr__(self) -> str:
        return (
            f"PPScheme(q={self.q}, n={self.n}, N={self.N}, M={self.M}, "
            f"addressing={self.addressing_kind})"
        )
