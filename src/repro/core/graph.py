"""The memory-organization graph ``G(V, U; E)`` of Section 2.

``V`` (variables) are the left cosets of ``H0 = PGL2(q)`` in
``PGL2(q^n)``; ``U`` (modules) the left cosets of
``H_{n-1} = {(a, alpha; 0, 1)}``.  Edges are non-empty coset
intersections.  The graph is never stored: neighbourhoods come from the
paper's algebraic formulas,

* Lemma 1:  ``Gamma(A H0) = {A H_{n-1}} ∪ {A (a, 1; 1, 0) H_{n-1} : a in F_q}``
* Lemma 2:  ``Gamma(A H_{n-1}) = {A (1, p; 0, 1) H0 : p in P_gamma}``
* Lemma 3:  ``Gamma^2(A H_{n-1}) = {A (delta, 1; 1, 0) H_{n-1} : delta in F_{q^n}}``

where ``P_gamma`` is the set of field elements expressible as
polynomials in gamma with zero constant term over F_q.

:class:`MemoryGraph` bundles the fields, subgroups, coset maps and these
formulas, including the vectorized copy->module kernel used by the
protocol simulator, and (for validation-scale parameters) an explicit
edge enumeration.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gf.gf2m import GF2m
from repro.gf.subfield import FieldEmbedding
from repro.pgl.cosets import ModuleCosets, VariableCosets
from repro.pgl.matrix import Mat, pgl2_mul, vcanon, vmul
from repro.pgl.subgroups import SubgroupH0, SubgroupHn1

__all__ = ["MemoryGraph"]


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class MemoryGraph:
    """The coset graph G(V, U; E) for parameters (q, n).

    Parameters
    ----------
    q:
        An even prime power (a power of 2, >= 2): each variable gets
        ``q + 1`` copies and reads/writes touch a majority ``q/2 + 1``.
    n:
        Extension degree, ``n >= 3``.

    Attributes
    ----------
    F:
        The field F_{q^n} (as GF(2^{k n}) where q = 2^k).
    Fq:
        The field F_q.
    N:
        Number of modules, ``(q^n + 1)(q^n - 1)/(q - 1)``.
    M:
        Number of variables,
        ``(q^n + 1) q^n (q^n - 1) / ((q + 1) q (q - 1))``.
    p_gamma:
        int64 array of the ``q^{n-1}`` elements of ``P_gamma`` in slot
        order (this order *is* the physical copy-slot order of Section 4).
    """

    def __init__(self, q: int, n: int):
        if not _is_power_of_two(q) or q < 2:
            raise ValueError(f"q must be an even prime power (power of 2), got {q}")
        if n < 3:
            raise ValueError(f"n must be >= 3, got {n}")
        k = q.bit_length() - 1
        self.q = q
        self.n = n
        self.k = k
        self.Fq = GF2m.get(k) if k >= 1 else GF2m.get(1)
        self.F = GF2m.get(k * n)
        self.embedding = FieldEmbedding(self.Fq, self.F)
        self.H0 = SubgroupH0(self.embedding)
        self.Hn1 = SubgroupHn1(self.embedding)
        self.modules = ModuleCosets(self.F, self.embedding)
        self.variables = VariableCosets(self.F, self.H0)
        self.N = self.modules.N
        self.M = self.variables.M
        self.copies_per_variable = q + 1
        self.majority = q // 2 + 1
        self.module_degree = q ** (n - 1)
        self._build_p_gamma()
        # Embedded F_q elements in natural small-field order 0..q-1:
        self._fq_embedded = self.embedding.table[: q].copy()

    # -- P_gamma ---------------------------------------------------------

    def _build_p_gamma(self) -> None:
        """Enumerate P_gamma = { sum_{i=1}^{n-1} a_i gamma^i : a_i in F_q }.

        Slot order: index ``k`` has base-q digits (a_1, ..., a_{n-1}) with
        a_1 least significant.  Also builds the inverse lookup
        (element -> slot, or -1).
        """
        F, q, n = self.F, self.q, self.n
        gamma_powers = [F.pow(F.generator, i) for i in range(1, n)]
        emb = self.embedding.embed
        size = q ** (n - 1)
        p = np.zeros(size, dtype=np.int64)
        for idx in range(size):
            acc = 0
            rem = idx
            for i in range(n - 1):
                rem, digit = divmod(rem, q)
                if digit:
                    acc ^= F.mul(emb(digit), gamma_powers[i])
            p[idx] = acc
        inv = np.full(F.order, -1, dtype=np.int64)
        inv[p] = np.arange(size, dtype=np.int64)
        if np.count_nonzero(inv >= 0) != size:
            raise AssertionError("P_gamma elements are not distinct")
        self.p_gamma = p
        self.p_gamma_inverse = inv

    # -- Lemma 1: modules of a variable -----------------------------------

    def copy_matrices(self, A: Mat) -> list[Mat]:
        """The ``q+1`` matrices ``A`` and ``A (a, 1; 1, 0)`` (a in F_q)
        defining the copies of variable ``A H0``, in canonical copy order.

        Copy 0 is ``A H_{n-1}`` itself; copy ``1 + i`` uses the embedded
        i-th element of F_q.  The order is well-defined per *matrix*; the
        scheme always feeds the canonical (Section-4) matrix here so all
        processors agree on the numbering.
        """
        F = self.F
        out = [A]
        for a_small in range(self.q):
            a = int(self._fq_embedded[a_small])
            out.append(pgl2_mul(F, A, (a, 1, 1, 0)))
        return out

    def gamma_variable(self, A: Mat) -> list[int]:
        """Lemma 1: the module indices storing the copies of ``A H0``,
        in copy order.  Always has ``q + 1`` distinct entries."""
        return [self.modules.index_of(m) for m in self.copy_matrices(A)]

    def vgamma_variables(
        self, mats: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ) -> np.ndarray:
        """Vectorized Lemma 1: for a batch of B variable matrices, return a
        ``(B, q+1)`` int64 array of module indices in copy order.

        This is the protocol's inner kernel; everything is table lookups.
        """
        F = self.F
        a, b, c, d = (np.asarray(x, dtype=np.int64) for x in mats)
        B = a.shape[0]
        out = np.empty((B, self.q + 1), dtype=np.int64)
        out[:, 0] = self.modules.vindex((a, b, c, d))
        for i in range(self.q):
            ae = np.int64(self._fq_embedded[i])
            # A @ (ae, 1; 1, 0) = (a*ae + b, a; c*ae + d, c)
            na = F.vadd(F.vmul(a, np.full(B, ae)), b)
            nb = a
            nc = F.vadd(F.vmul(c, np.full(B, ae)), d)
            nd = c
            out[:, i + 1] = self.modules.vindex((na, nb, nc, nd))
        return out

    # -- Lemma 2: variables of a module ------------------------------------

    def gamma_module(self, u: int) -> list[Mat]:
        """Lemma 2: the ``q^{n-1}`` variable cosets with a copy in module
        ``u``, as matrices ``B (1, p_k; 0, 1)`` in slot order ``k``.

        The returned matrices are the *copy-defining* matrices (not
        variable-canonical); apply ``variables.canon`` for coset identity.
        """
        B = self.modules.rep_of(u)
        F = self.F
        return [
            pgl2_mul(F, B, (1, int(p), 0, 1)) for p in self.p_gamma
        ]

    def gamma_module_keys(self, u: int) -> list[int]:
        """Variable coset keys (canonical packed ints) of ``Gamma(u)``."""
        return [self.variables.key(m) for m in self.gamma_module(u)]

    # -- Lemma 3: Gamma^2 ----------------------------------------------------

    def gamma2_module(self, u: int) -> list[int]:
        """Lemma 3: ``Gamma^2(u) = {B (delta, 1; 1, 0) H_{n-1} : delta in
        F_{q^n}}`` as module indices (q^n of them, excluding u itself)."""
        B = self.modules.rep_of(u)
        F = self.F
        out = []
        for delta in range(F.order):
            m = pgl2_mul(F, B, (delta, 1, 1, 0))
            out.append(self.modules.index_of(m))
        return out

    # -- batch canonical keys (for dedup / identity at scale) ---------------

    def vkeys(
        self, mats: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ) -> np.ndarray:
        """Vectorized variable-coset keys: min over the |H0| right
        translates of the packed canonical matrix code.

        |H0| = q^3 - q is constant (6 for q=2), so this is a constant
        number of vectorized matrix products per batch.
        """
        F = self.F
        a, b, c, d = (np.asarray(x, dtype=np.int64) for x in mats)
        kord = np.int64(F.order)
        best = None
        for h in self.H0.elements():
            ha, hb, hc, hd = (np.int64(x) for x in h)
            prod = vmul(F, (a, b, c, d), (ha, hb, hc, hd))
            ca, cb, cc, cd = vcanon(F, prod)
            code = ((ca * kord + cb) * kord + cc) * kord + cd
            best = code if best is None else np.minimum(best, code)
        return best

    # -- explicit enumeration (validation scale) ----------------------------

    def group_element_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All |PGL2(q^n)| canonical matrices as four int64 arrays
        (vectorized construction; Theta(q^{3n}) memory -- validation scale)."""
        F = self.F
        k = F.order
        grid = np.arange(k, dtype=np.int64)
        a3, b3, c3 = (
            x.reshape(-1) for x in np.meshgrid(grid, grid, grid, indexing="ij")
        )
        det = F.vadd(a3, F.vmul(b3, c3))  # det of (a, b; c, 1)
        ok = det != 0
        a = np.concatenate([a3[ok], np.repeat(grid, k - 1)])
        b = np.concatenate([b3[ok], np.tile(grid[1:], k)])
        c = np.concatenate([c3[ok], np.ones((k - 1) * k, dtype=np.int64)])
        d = np.concatenate(
            [
                np.ones(int(ok.sum()), dtype=np.int64),
                np.zeros((k - 1) * k, dtype=np.int64),
            ]
        )
        return a, b, c, d

    def explicit_edges(self) -> set[tuple[int, int]]:
        """Ground-truth edges as (variable key, module index) pairs.

        Every group element lies in exactly one variable coset and one
        module coset, so pairing (vkeys, vindex) over the whole group
        enumerates the coset intersections -- i.e. the edges -- directly
        from the definition, independently of Lemmas 1-2.
        """
        mats = self.group_element_arrays()
        vkeys = self.vkeys(mats)
        uidx = self.modules.vindex(mats)
        return set(zip(vkeys.tolist(), uidx.tolist()))

    def all_variable_matrices(self) -> list[Mat]:
        """All M variable cosets as canonical matrices (validation scale),
        sorted by packed key."""
        keys = np.unique(self.vkeys(self.group_element_arrays()))
        if keys.size != self.M:
            raise AssertionError(
                f"enumerated {keys.size} variable cosets, expected {self.M}"
            )
        return [self.variables.unkey(int(k)) for k in keys]

    # -- sampling -------------------------------------------------------------

    def random_variable_matrices(
        self, count: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sample ``count`` *distinct* variable cosets uniformly; returns
        the four entry arrays of their canonical matrices.

        Sampling: draw random nonsingular matrices (uniform over the
        group, hence uniform over cosets), canonicalize to coset keys,
        deduplicate, repeat until enough.  Requires ``count <= M``.
        """
        if count > self.M:
            raise ValueError(f"cannot sample {count} distinct of {self.M} variables")
        F = self.F
        chosen: dict[int, int] = {}
        keys_order: list[int] = []
        while len(keys_order) < count:
            need = max(64, int(1.3 * (count - len(keys_order))))
            a = F.random_elements(need, rng)
            b = F.random_elements(need, rng)
            c = F.random_elements(need, rng)
            d = F.random_elements(need, rng)
            det = F.vadd(F.vmul(a, d), F.vmul(b, c))
            ok = det != 0
            a, b, c, d = a[ok], b[ok], c[ok], d[ok]
            keys = self.vkeys((a, b, c, d))
            for key in keys:
                key = int(key)
                if key not in chosen:
                    chosen[key] = 1
                    keys_order.append(key)
                    if len(keys_order) == count:
                        break
        mats = [self.variables.unkey(key) for key in keys_order]
        arr = np.array(mats, dtype=np.int64)
        return arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]

    # -- reporting --------------------------------------------------------------

    def describe(self) -> dict:
        """Structural summary (Fact 1 quantities and derived exponents)."""
        qn = self.F.order
        return {
            "q": self.q,
            "n": self.n,
            "q^n": qn,
            "N": self.N,
            "M": self.M,
            "copies_per_variable": self.copies_per_variable,
            "majority": self.majority,
            "variable_degree": self.q + 1,
            "module_degree": self.module_degree,
            "M_exponent_vs_N": math.log(self.M) / math.log(self.N),
            "predicted_exponent": 1.5 - 3.0 / (4 * self.n - 2),
        }

    def __repr__(self) -> str:
        return f"MemoryGraph(q={self.q}, n={self.n}, N={self.N}, M={self.M})"
