"""Section 3: the clustered majority access protocol on the MPC.

Processors are grouped into clusters of ``q + 1``; the protocol runs
``q + 1`` *phases*, and in phase ``k`` the whole cluster cooperates on
the variable requested by its k-th member -- processor ``P(i, j)`` is in
charge of copy ``j`` of variable ``v(i, k)``.  Within a phase the
processors iterate: every processor whose copy is still alive and whose
variable is still unsatisfied re-requests its copy's module; each module
serves one request per iteration; a variable is satisfied once a
majority ``q/2 + 1`` of its copies has been accessed.

The simulator runs under one of two *engines* (see
:mod:`repro.core.engine`): the default ``'vector'`` engine executes
each iteration as one numpy arbitration pass -- a quarter-million-
request access at q = 2 runs in seconds -- while the ``'scalar'``
engine replays the identical protocol one access per processor in pure
Python as the differential-testing oracle.  Both engines share this
module's validation, fault classification, and observability emission,
so their outputs are comparable field for field.  The protocol can run
in three modes:

* ``op='count'``  -- iteration counting only (Theorems 5/6 experiments);
* ``op='write'``  -- winning copies are stamped (value, time) in a
  :class:`~repro.mpc.memory.SharedCopyStore`;
* ``op='read'``   -- winning copies are read and each variable returns
  the value with the freshest timestamp among its accessed majority.

When observability is on (:mod:`repro.obs`), every batch emits a
``protocol.access`` span and per-phase ``protocol.phase`` spans carrying
the live-history trajectory ``R_k``; when off, the run pays one guard.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field

import numpy as np

import repro.obs as _obs
from repro.faults.report import DEGRADED, LOST, FaultReport
from repro.mpc.machine import MPC
from repro.mpc.memory import SharedCopyStore
from repro.mpc.stats import MPCStats

__all__ = ["PhaseTrace", "AccessResult", "run_access_protocol"]

#: Values are packed with timestamps into one int64 during reads:
#: value in [0, 2^32), timestamp in [0, 2^31).
VALUE_LIMIT = 1 << 32


@dataclass
class PhaseTrace:
    """Per-phase telemetry.

    ``live_history[k]`` is the number of live (unsatisfied) variables
    after iteration ``k``; ``live_history[0]`` is the phase's initial
    variable count, so ``iterations == len(live_history) - 1``.
    """

    iterations: int
    live_history: list[int] = field(default_factory=list)


@dataclass
class AccessResult:
    """Outcome of one parallel access operation (a batch of requests)."""

    op: str
    n_requests: int
    q: int
    phases: list[PhaseTrace]
    values: np.ndarray | None
    mpc_stats: MPCStats
    #: request positions that could not reach their quorum because too
    #: many of their copies sit in failed modules (empty when healthy)
    unsatisfiable: np.ndarray | None = None
    #: per-variable satisfied/degraded/lost classification; populated
    #: only when the run had faults injected (None on the healthy path)
    fault_report: FaultReport | None = None
    #: execution engine that produced this result ('vector' | 'scalar')
    engine: str = "vector"

    @property
    def iterations_per_phase(self) -> list[int]:
        """Iteration count of each of the q + 1 phases."""
        return [p.iterations for p in self.phases]

    @property
    def max_phase_iterations(self) -> int:
        """``Phi`` -- the paper's per-phase worst case."""
        return max((p.iterations for p in self.phases), default=0)

    @property
    def total_iterations(self) -> int:
        """Total module-cycle count across all phases (the MPC time spent
        in the iteration loops)."""
        return sum(p.iterations for p in self.phases)

    def modeled_steps(self, N: int, addressing_steps: int | None = None) -> int:
        """The paper's cost model ``O(q (Phi log q + log N))``: per phase,
        every iteration costs a cluster-coordination factor
        ``ceil(log2(q + 1)) + 1`` and the phase pays one address
        computation of ``O(log N)`` steps."""
        coord = math.ceil(math.log2(self.q + 1)) + 1
        addr = addressing_steps if addressing_steps is not None else math.ceil(
            math.log2(max(2, N))
        )
        return sum(p.iterations * coord + addr for p in self.phases)


def run_access_protocol(
    module_ids: np.ndarray,
    n_modules: int,
    majority: int,
    *,
    op: str = "count",
    slots: np.ndarray | None = None,
    store: SharedCopyStore | None = None,
    values: np.ndarray | None = None,
    time: int = 0,
    arbitration: str = "lowest",
    seed: int = 0,
    collect_history: bool = True,
    max_iterations: int = 10_000_000,
    n_phases: int | None = None,
    failed_modules: np.ndarray | None = None,
    allow_partial: bool = False,
    grey_modules: np.ndarray | None = None,
    retry_limit: int | None = None,
    var_ids: np.ndarray | None = None,
    engine: str | None = None,
) -> AccessResult:
    """Run the q+1-phase majority protocol for one batch of requests.

    Parameters
    ----------
    module_ids:
        ``(V, q+1)`` int64 array: the module of each copy of each of the
        ``V`` *distinct* requested variables, in copy order.
    n_modules:
        Module count ``N`` of the machine.
    majority:
        Copies that must be accessed per variable (``q/2 + 1``).
    op:
        ``'count'``, ``'read'`` or ``'write'``.
    slots:
        ``(V, q+1)`` physical slot of each copy -- required for
        read/write with a ``store``.
    store:
        The timestamped copy cells (required for read/write).
    values:
        ``(V,)`` values to write (op='write').
    time:
        Logical timestamp for this batch (strictly increase it across
        batches; reads break ties toward the larger stamp).
    arbitration, seed:
        Module arbitration policy (see :mod:`repro.mpc.arbitration`).
    collect_history:
        Record the live-variable trajectory R_k of every phase.
    n_phases:
        Override the phase count (default ``q + 1``, the paper's cluster
        structure).  ``n_phases=1`` stresses a single phase with all
        ``V`` variables live at once -- used by the recurrence-(2)
        experiments, which need a controlled ``R_0``.
    failed_modules:
        Module ids that never serve (fault injection).  Ids must be
        unique and in ``[0, n_modules)`` -- out-of-range or duplicate
        ids raise :class:`ValueError` at this boundary instead of
        flowing silently into the masks.  A variable remains
        satisfiable while >= ``majority`` of its copies live in healthy
        modules -- the fault tolerance the majority discipline inherits
        from [Tho79].
    allow_partial:
        When some variable cannot reach its quorum (too many failed
        copies, or the ``retry_limit`` ran out): raise
        :class:`ValueError` if False (default), else finish the others
        and report the casualties in ``result.unsatisfiable`` (their
        read values stay -1).
    grey_modules:
        ``(n_modules,)`` serve periods for grey ("slow") modules: a
        module with period ``j >= 2`` answers only every j-th iteration
        of a phase; period 1 is healthy.  Nothing dies -- affected
        variables pay extra iterations, accounted as *degraded* in the
        run's :class:`~repro.faults.report.FaultReport`.
    retry_limit:
        Bounded retry: a variable still unsatisfied after this many
        iterations of its phase is declared *lost* (reported via
        ``allow_partial`` semantics) instead of being retried forever.
    var_ids:
        ``(V,)`` global variable ids of the requests, used only to label
        the per-operation ``mem.op`` trace events consumed by the
        conformance checker (:mod:`repro.conformance`).  Defaults to the
        batch positions.  Events are emitted only for read/write ops and
        only while a recording tracer is installed, so the healthy path
        pays nothing extra.
    engine:
        ``'vector'`` (numpy batch execution, the default), ``'scalar'``
        (the pure-Python per-processor oracle), or None to resolve via
        ``$REPRO_ENGINE`` -- see :mod:`repro.core.engine`.  Both
        engines produce bit-identical results by construction; the
        differential suite enforces it.

    Returns
    -------
    :class:`AccessResult` -- iteration counts, histories, and read values.
    """
    from repro.core.engine import resolve_engine, run_phase_scalar

    eng = resolve_engine(engine)
    phase_runner = _run_phase if eng == "vector" else run_phase_scalar
    module_ids = np.asarray(module_ids, dtype=np.int64)
    if module_ids.ndim != 2:
        raise ValueError("module_ids must be (V, q+1)")
    V, copies = module_ids.shape
    q = copies - 1
    if not 1 <= majority <= copies:
        raise ValueError(f"majority {majority} out of [1, {copies}]")
    if op not in ("count", "read", "write"):
        raise ValueError(f"unknown op {op!r}")
    if op in ("read", "write"):
        if store is None or slots is None:
            raise ValueError(f"op={op!r} requires store and slots")
        slots = np.asarray(slots, dtype=np.int64)
        if slots.shape != module_ids.shape:
            raise ValueError("slots must match module_ids shape")
    if op == "write":
        if values is None:
            raise ValueError("op='write' requires values")
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (V,):
            raise ValueError("values must be shape (V,)")
        if np.any((values < 0) | (values >= VALUE_LIMIT)):
            raise ValueError("write values must be in [0, 2^32)")

    mpc = MPC(n_modules, arbitration=arbitration, seed=seed)
    out_values = (
        np.full(V, -1, dtype=np.int64) if op == "read" else None
    )

    # Fault injection: copies in failed modules are permanently dead.
    dead_copy = None
    unsatisfiable = None
    failed_arr = None
    if failed_modules is not None and len(failed_modules) > 0:
        failed_arr = np.asarray(failed_modules, dtype=np.int64).reshape(-1)
        if np.any((failed_arr < 0) | (failed_arr >= n_modules)):
            raise ValueError(
                f"failed_modules ids must be in [0, {n_modules}); got "
                f"values outside the module pool"
            )
        if np.unique(failed_arr).size != failed_arr.size:
            raise ValueError("failed_modules contains duplicate module ids")
        failed_mask = np.zeros(n_modules, dtype=bool)
        failed_mask[failed_arr] = True
        dead_copy = failed_mask[module_ids]  # (V, copies)
        alive_per_var = copies - dead_copy.sum(axis=1)
        doomed = alive_per_var < majority
        if np.any(doomed):
            if not allow_partial:
                raise ValueError(
                    f"{int(doomed.sum())} variables cannot reach quorum "
                    f"{majority} with the given failed modules; pass "
                    f"allow_partial=True to proceed without them"
                )
            unsatisfiable = np.nonzero(doomed)[0].astype(np.int64)

    # Grey (slow) modules: serve-period array, normalized to None when
    # every period is 1 so the trivial case keeps the healthy hot path.
    grey = None
    if grey_modules is not None:
        grey = np.asarray(grey_modules, dtype=np.int64).reshape(-1)
        if grey.shape != (n_modules,):
            raise ValueError(
                f"grey_modules must have shape ({n_modules},), one serve "
                f"period per module"
            )
        if np.any(grey < 1):
            raise ValueError("grey_modules periods must be >= 1")
        if np.all(grey <= 1):
            grey = None
    if retry_limit is not None and retry_limit < 1:
        raise ValueError("retry_limit must be >= 1")

    # Degraded-mode bookkeeping, allocated only when faults are active.
    faults_on = dead_copy is not None or grey is not None
    track = faults_on or retry_limit is not None
    out_lost = np.zeros(V, dtype=bool) if track else None
    out_sat = np.full(V, -1, dtype=np.int64) if track else None

    phase_count = copies if n_phases is None else n_phases
    if phase_count < 1:
        raise ValueError("n_phases must be >= 1")
    phases: list[PhaseTrace] = []
    obs_on = _obs.enabled()
    led = _obs.ledger() if obs_on else None
    arb0 = led.seconds["arbitration"] if led is not None else 0.0
    mem0 = led.seconds["memory"] if led is not None else 0.0
    t_start = _time.perf_counter() if obs_on else 0.0
    with _obs.span(
        "protocol.access", op=op, requests=V, q=q, phases=phase_count,
        engine=eng,
    ) as acc_span:
        for k in range(phase_count):
            phase_vars = np.arange(V, dtype=np.int64)[
                np.arange(V) % phase_count == k
            ]
            with _obs.span(
                "protocol.phase", phase=k, variables=int(phase_vars.size)
            ) as ph_span:
                trace = phase_runner(
                    phase_vars,
                    module_ids,
                    slots,
                    mpc,
                    majority,
                    op,
                    store,
                    values,
                    out_values,
                    time,
                    collect_history,
                    max_iterations,
                    dead_copy,
                    grey,
                    retry_limit,
                    allow_partial,
                    out_lost,
                    out_sat,
                    led,
                )
                ph_span.add(
                    iterations=trace.iterations,
                    live_history=list(trace.live_history),
                )
            phases.append(trace)
        acc_span.add(total_iterations=sum(p.iterations for p in phases))
    fault_report = None
    if track:
        lost_idx = np.nonzero(out_lost)[0].astype(np.int64)
        unsatisfiable = lost_idx if lost_idx.size else None
        if faults_on:
            fault_report = _build_fault_report(
                module_ids, dead_copy, grey, failed_arr, out_lost, out_sat,
                retry_limit,
            )
    if obs_on and op != "count":
        _emit_mem_ops(
            op, var_ids, V, phase_count, out_values, values, out_lost, time
        )
        b = _obs.bus()
        if b is not None:
            _publish_health(
                b, op, time, V, copies, majority, n_modules, mpc.stats,
                phases, dead_copy, unsatisfiable, fault_report,
            )
    if obs_on and _obs.metrics_enabled():
        m = _obs.metrics()
        m.counter("protocol.accesses", op=op).inc()
        m.counter("protocol.iterations").inc(sum(p.iterations for p in phases))
        hist = m.histogram("protocol.phase_iterations")
        for p in phases:
            hist.observe(p.iterations)
        m.timer("protocol.access_seconds", op=op).observe(
            _time.perf_counter() - t_start
        )
        if unsatisfiable is not None:
            m.counter("protocol.lost_variables").inc(int(unsatisfiable.size))
    if led is not None:
        # Ledger close-out last so the batch wall covers the emission /
        # metrics bookkeeping above (it lands in the bookkeeping leaf).
        rec = led.record_batch(
            op=op,
            requests=V,
            copies=copies,
            majority=majority,
            modules=n_modules,
            rounds=sum(p.iterations for p in phases),
            phi=max((p.iterations for p in phases), default=0),
            stats=mpc.stats,
            seconds=_time.perf_counter() - t_start,
            arbitration_seconds=led.seconds["arbitration"] - arb0,
            memory_seconds=led.seconds["memory"] - mem0,
        )
        _obs.publish("ledger.batch", **rec.event_fields())

    return AccessResult(
        op=op,
        n_requests=V,
        q=q,
        phases=phases,
        values=out_values,
        mpc_stats=mpc.stats,
        unsatisfiable=unsatisfiable,
        fault_report=fault_report,
        engine=eng,
    )


def _emit_mem_ops(
    op: str,
    var_ids: np.ndarray | None,
    V: int,
    phase_count: int,
    out_values: np.ndarray | None,
    values: np.ndarray | None,
    out_lost: np.ndarray | None,
    time: int,
) -> None:
    """One ``mem.op`` trace event per request of a read/write batch.

    The event is the checker-facing record of what the memory *did*:
    ``var`` (global id), ``value`` (written, or observed by the read),
    ``round`` (the batch's logical timestamp), ``proc`` (the requesting
    position -- the cluster member in charge), ``phase`` (the protocol
    phase that served it) and ``lost`` (quorum lost, value invalid).
    """
    tr = _obs.tracer()
    if not tr.enabled and _obs.bus() is None:
        return
    ids = (
        np.arange(V, dtype=np.int64)
        if var_ids is None
        else np.asarray(var_ids, dtype=np.int64).reshape(-1)
    )
    if ids.shape[0] != V:
        raise ValueError(f"var_ids must have shape ({V},)")
    vals = out_values if op == "read" else values
    for i in range(V):
        _obs.publish(
            "mem.op",
            op=op,
            var=int(ids[i]),
            value=int(vals[i]),
            round=int(time),
            proc=i,
            phase=i % phase_count,
            lost=bool(out_lost[i]) if out_lost is not None else False,
        )


def _publish_health(
    b,
    op: str,
    time: int,
    V: int,
    copies: int,
    majority: int,
    n_modules: int,
    stats,
    phases: list[PhaseTrace],
    dead_copy: np.ndarray | None,
    unsatisfiable: np.ndarray | None,
    fault_report,
) -> None:
    """One bus-only ``protocol.health`` event per read/write batch.

    Bus-only on purpose: recorded traces keep their existing schema
    byte-for-byte, while live consumers (:class:`repro.obs.stream.
    HealthAggregator`) get the per-batch gauges.  ``load_skew`` is
    ``100 x max_congestion / (served / (modules x steps))`` -- 100
    means perfectly balanced, larger means hotter hot spots.
    ``quorum_margin`` is the worst variable's live copies beyond the
    majority (0 = one more failure loses data).
    """
    if not _obs.enabled():
        return
    total_iters = sum(p.iterations for p in phases)
    served = int(stats.served)
    skew = (
        int(round(100 * stats.max_congestion * n_modules * stats.steps
                  / served))
        if served
        else 0
    )
    if dead_copy is not None:
        margin = int((copies - dead_copy.sum(axis=1)).min()) - majority
    else:
        margin = copies - majority
    degraded = 0
    if fault_report is not None:
        degraded = int(np.count_nonzero(fault_report.outcomes == DEGRADED))
    b.publish(
        "protocol.health",
        {
            "op": op,
            "round": int(time),
            "requests": V,
            "copies": copies,
            "majority": majority,
            "modules": n_modules,
            "iterations": total_iters,
            "served": served,
            "max_congestion": int(stats.max_congestion),
            "load_skew": skew,
            "lost": int(unsatisfiable.size) if unsatisfiable is not None else 0,
            "degraded": degraded,
            "quorum_margin": margin,
        },
    )


def _build_fault_report(
    module_ids: np.ndarray,
    dead_copy: np.ndarray | None,
    grey: np.ndarray | None,
    failed_arr: np.ndarray | None,
    lost: np.ndarray,
    sat_iter: np.ndarray,
    retry_limit: int | None,
) -> FaultReport:
    """Classify every variable of a faulty run (satisfied/degraded/lost)
    and collect the faulty modules implicated in the damage."""
    V = module_ids.shape[0]
    dead_counts = (
        dead_copy.sum(axis=1).astype(np.int64)
        if dead_copy is not None
        else np.zeros(V, dtype=np.int64)
    )
    grey_counts = (
        (grey[module_ids] > 1).sum(axis=1).astype(np.int64)
        if grey is not None
        else np.zeros(V, dtype=np.int64)
    )
    outcomes = np.zeros(V, dtype=np.int8)
    affected = (dead_counts > 0) | (grey_counts > 0)
    outcomes[affected] = DEGRADED
    outcomes[lost] = LOST
    touched = module_ids[affected | lost]
    implicated: list[np.ndarray] = []
    if failed_arr is not None and touched.size:
        implicated.append(np.intersect1d(touched, failed_arr))
    if grey is not None and touched.size:
        grey_ids = np.nonzero(grey > 1)[0]
        implicated.append(np.intersect1d(touched, grey_ids))
    modules = (
        np.unique(np.concatenate(implicated)).astype(np.int64)
        if implicated
        else np.empty(0, dtype=np.int64)
    )
    return FaultReport(
        outcomes=outcomes,
        dead_copies=dead_counts,
        grey_copies=grey_counts,
        satisfied_at=sat_iter,
        implicated_modules=modules,
        retry_limit=retry_limit,
    )


def _run_phase(
    phase_vars: np.ndarray,
    module_ids: np.ndarray,
    slots: np.ndarray | None,
    mpc: MPC,
    majority: int,
    op: str,
    store: SharedCopyStore | None,
    values: np.ndarray | None,
    out_values: np.ndarray | None,
    time: int,
    collect_history: bool,
    max_iterations: int,
    dead_copy: np.ndarray | None = None,
    grey: np.ndarray | None = None,
    retry_limit: int | None = None,
    allow_partial: bool = False,
    out_lost: np.ndarray | None = None,
    out_sat: np.ndarray | None = None,
    led=None,
) -> PhaseTrace:
    """One phase: iterate until every variable of the phase is satisfied
    (or unsatisfiable because its live copies cannot reach the quorum,
    or the bounded retry budget runs out).

    ``led`` is the installed :class:`~repro.obs.ledger.Ledger` (or
    None): when present, each iteration's arbitration (``mpc.step``)
    and memory (store read/write) time is attributed to its leaf.
    """
    P = phase_vars.shape[0]
    copies = module_ids.shape[1]
    history = [P] if collect_history else []
    if P == 0:
        return PhaseTrace(iterations=0, live_history=history)

    mods = module_ids[phase_vars]  # (P, copies)
    slts = slots[phase_vars] if slots is not None else None
    accessed = np.zeros((P, copies), dtype=bool)
    hit_count = np.zeros(P, dtype=np.int64)
    satisfied = np.zeros(P, dtype=bool)
    doomed = np.zeros(P, dtype=bool)
    if dead_copy is not None:
        dead = dead_copy[phase_vars]
        accessed |= dead  # dead copies are never requested...
        # ...and variables that cannot reach the quorum are terminally
        # resolved up front so the phase can end (caller reports them).
        doomed = (copies - dead.sum(axis=1)) < majority
        satisfied |= doomed
    # lost grows past the upfront doomed set only on retry exhaustion
    lost = doomed if retry_limit is None else doomed.copy()
    sat_local = np.full(P, -1, dtype=np.int64) if out_sat is not None else None
    # Read bookkeeping: freshest (stamp, value) packed into one int64.
    best_packed = np.full(P, -1, dtype=np.int64) if op == "read" else None

    # Flattened task view
    task_var = np.repeat(np.arange(P, dtype=np.int64), copies)
    task_copy = np.tile(np.arange(copies, dtype=np.int64), P)
    task_mod = mods.reshape(-1)
    task_slot = slts.reshape(-1) if slts is not None else None

    iterations = 0
    while not np.all(satisfied):
        if iterations >= max_iterations:  # pragma: no cover
            raise RuntimeError("protocol exceeded max_iterations")
        if retry_limit is not None and iterations >= retry_limit:
            # Bounded retry exhausted: declare the stragglers lost so
            # the phase terminates instead of spinning on them.
            still = ~satisfied
            if not allow_partial:
                raise ValueError(
                    f"{int(still.sum())} variables did not reach quorum "
                    f"{majority} within retry_limit={retry_limit} "
                    f"iterations; pass allow_partial=True to proceed "
                    f"without them"
                )
            lost |= still
            satisfied |= still
            break
        active = (~accessed.reshape(-1)) & (~satisfied[task_var])
        idx_active = np.nonzero(active)[0]
        t0 = _time.perf_counter() if led is not None else 0.0
        if grey is None:
            winners_local = mpc.step(task_mod[idx_active])
        else:
            # a grey module with period j answers only on iterations
            # where (iteration + 1) % j == 0 (healthy period-1 modules
            # always answer)
            winners_local = mpc.step(
                task_mod[idx_active], blocked=((iterations + 1) % grey) != 0
            )
        if led is not None:
            led.add_seconds("arbitration", _time.perf_counter() - t0)
        win = idx_active[winners_local]
        # mark copies accessed
        accessed[task_var[win], task_copy[win]] = True
        np.add.at(hit_count, task_var[win], 1)
        if op == "write":
            t0 = _time.perf_counter() if led is not None else 0.0
            store.write(
                task_mod[win], task_slot[win], values[phase_vars[task_var[win]]], time
            )
            if led is not None:
                led.add_seconds("memory", _time.perf_counter() - t0)
        elif op == "read":
            t0 = _time.perf_counter() if led is not None else 0.0
            vals, stamps = store.read(task_mod[win], task_slot[win])
            packed = np.where(stamps < 0, np.int64(-1), (stamps << 32) | vals)
            np.maximum.at(best_packed, task_var[win], packed)
            if led is not None:
                led.add_seconds("memory", _time.perf_counter() - t0)
        satisfied = lost | (hit_count >= majority)
        iterations += 1
        if sat_local is not None:
            newly = satisfied & (sat_local < 0) & ~lost
            sat_local[newly] = iterations
        if collect_history:
            history.append(int(np.count_nonzero(~satisfied)))

    if op == "read":
        read_vals = np.where(best_packed < 0, np.int64(-1), best_packed & 0xFFFFFFFF)
        out_values[phase_vars] = read_vals
    if out_lost is not None:
        out_lost[phase_vars] = lost
    if out_sat is not None:
        out_sat[phase_vars] = sat_local
    return PhaseTrace(iterations=iterations, live_history=history)
