"""Arbitration policies: one request per module per MPC step.

When several processors address the same module in a step, exactly one
is served.  The paper's analysis is policy-independent (it only uses
"the number of copies accessed equals the number of modules receiving
requests"), but the simulator lets experiments check that measured
iteration counts are robust across policies.

Every policy reduces to a *priority assignment*: given ``k`` pending
requests it produces ``k`` distinct integer priorities, and each module
serves its lowest-priority request.  :meth:`priorities` exposes that
assignment directly so the scalar reference engine
(:mod:`repro.core.engine`) and the vectorized machine path consume the
identical decision sequence -- including the identical RNG stream for
the random policy -- which is what makes scalar-vs-vector differential
runs winner-for-winner comparable.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

__all__ = ["Arbiter", "LowestIdArbiter", "RandomArbiter", "RotatingArbiter", "make_arbiter"]


class Arbiter(Protocol):
    """Callable protocol: select winners among simultaneous requests."""

    def __call__(self, module_ids: np.ndarray) -> np.ndarray:
        """Given the module id of every pending request (one entry per
        requesting processor, in processor order), return the indices of
        the winning requests -- exactly one per distinct module."""
        ...

    def priorities(self, k: int) -> np.ndarray:
        """``k`` distinct priorities for ``k`` pending requests (lower
        wins); advances any policy state exactly as one step does."""
        ...


def _first_of_each_module(order: np.ndarray, module_ids: np.ndarray) -> np.ndarray:
    """Winners = the first request of each module along ``order``."""
    sorted_mods = module_ids[order]
    is_first = np.empty(sorted_mods.shape, dtype=bool)
    is_first[:1] = True
    np.not_equal(sorted_mods[1:], sorted_mods[:-1], out=is_first[1:])
    return order[is_first]


class LowestIdArbiter:
    """Deterministic: the lowest-index request wins each module."""

    def priorities(self, k: int) -> np.ndarray:
        """Priority == request position (identity)."""
        return np.arange(k, dtype=np.int64)

    def __call__(self, module_ids: np.ndarray) -> np.ndarray:
        order = np.argsort(module_ids, kind="stable")
        return _first_of_each_module(order, module_ids)


class RandomArbiter:
    """Seeded uniform arbitration: a random pending request wins."""

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    def priorities(self, k: int) -> np.ndarray:
        """One permutation draw per step -- the same stream the
        vectorized call consumes."""
        return self.rng.permutation(k)

    def __call__(self, module_ids: np.ndarray) -> np.ndarray:
        prio = self.priorities(module_ids.shape[0])
        order = np.lexsort((prio, module_ids))
        return _first_of_each_module(order, module_ids)


class RotatingArbiter:
    """Round-robin: priority rotates by an increasing offset each step,
    so no processor is persistently favoured."""

    def __init__(self):
        self.offset = 0

    def priorities(self, k: int) -> np.ndarray:
        """Rotated identity; advances the shared offset by one step."""
        prio = (np.arange(k) + self.offset) % k
        self.offset += 1
        return prio

    def __call__(self, module_ids: np.ndarray) -> np.ndarray:
        k = module_ids.shape[0]
        if k == 0:
            return np.empty(0, dtype=np.int64)
        prio = self.priorities(k)
        order = np.lexsort((prio, module_ids))
        return _first_of_each_module(order, module_ids)


_POLICIES: dict[str, Callable[..., Arbiter]] = {
    "lowest": LowestIdArbiter,
    "random": RandomArbiter,
    "rotating": RotatingArbiter,
}


def make_arbiter(policy: str = "lowest", seed: int = 0) -> Arbiter:
    """Factory for arbitration policies: 'lowest', 'random', 'rotating'."""
    if policy not in _POLICIES:
        raise ValueError(f"unknown arbitration policy {policy!r}; options: {sorted(_POLICIES)}")
    if policy == "random":
        return RandomArbiter(seed)
    return _POLICIES[policy]()
