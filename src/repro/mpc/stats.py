"""Counters and histories collected while the MPC runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import _QuantileSketch

__all__ = ["MPCStats"]


@dataclass
class MPCStats:
    """Aggregate statistics of a simulated MPC execution.

    Attributes
    ----------
    steps:
        Number of synchronous machine steps executed (the MPC time).
    requests:
        Total requests issued across all steps.
    served:
        Total requests served (= copies accessed); at most one per
        module per step by the machine's contract.
    max_congestion:
        Largest number of simultaneous requests observed at one module
        in a single step.
    congestion:
        Per-step congestion *distribution* (deterministic bounded
        sketch, one observation per machine step).  ``max_congestion``
        is the exact scalar; the sketch adds p50/p95 so the ledger can
        tell a uniformly spread load from one hot module.
    served_per_step:
        History of how many modules were busy each step (optional; kept
        when the machine is created with ``history=True``).
    """

    steps: int = 0
    requests: int = 0
    served: int = 0
    max_congestion: int = 0
    congestion: _QuantileSketch = field(default_factory=_QuantileSketch)
    served_per_step: list[int] = field(default_factory=list)
    keep_history: bool = False

    def record_step(self, n_requests: int, n_served: int, congestion: int) -> None:
        """Fold one machine step into the counters."""
        self.steps += 1
        self.requests += int(n_requests)
        self.served += int(n_served)
        if congestion > self.max_congestion:
            self.max_congestion = int(congestion)
        self.congestion.observe(float(congestion))
        if self.keep_history:
            self.served_per_step.append(int(n_served))

    def congestion_summary(self) -> dict[str, float | None]:
        """``{"p50": ..., "p95": ..., "max": ...}`` over per-step congestion.

        Quantiles come from the bounded sketch (approximate past its
        cap, ``None`` before any step); ``max`` is the exact scalar
        aggregate.
        """
        return {
            "p50": self.congestion.quantile(0.5),
            "p95": self.congestion.quantile(0.95),
            "max": float(self.max_congestion),
        }

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view of the counters plus the congestion summary."""
        return {
            "steps": self.steps,
            "requests": self.requests,
            "served": self.served,
            "congestion": self.congestion_summary(),
        }

    def merge(self, other: "MPCStats") -> None:
        """Accumulate another stats object into this one.

        History survives whenever *either* side kept one: the merged
        object extends with ``other.served_per_step`` unconditionally
        (empty when the other side kept none) and ORs ``keep_history``.
        The congestion sketches pool their observations, so quantiles
        after a merge reflect both executions.
        """
        self.steps += other.steps
        self.requests += other.requests
        self.served += other.served
        self.max_congestion = max(self.max_congestion, other.max_congestion)
        self.congestion.merge(other.congestion)
        self.served_per_step.extend(other.served_per_step)
        self.keep_history = self.keep_history or other.keep_history
