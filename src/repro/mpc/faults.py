"""Module failure/repair schedules for long-running availability runs.

A :class:`FaultSchedule` evolves a set of failed modules over logical
time (random failures at a given rate, repairs after a fixed lag) and
feeds the protocol's ``failed_modules`` hook batch by batch.  Used by
the availability simulation in the fault-tolerance experiment family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # import kept lazy: schemes -> core -> mpc cycle
    from repro.schemes.base import MemoryScheme

__all__ = ["FaultSchedule", "AvailabilityTrace", "simulate_availability"]


class FaultSchedule:
    """Random failures with deterministic repair lag.

    Parameters
    ----------
    n_modules:
        Size of the module pool.
    failure_rate:
        Expected fraction of *healthy* modules failing per step.
    repair_lag:
        Steps a failed module stays down -- exact: a module failing at
        step ``t`` is down for steps ``t .. t + lag - 1`` and healthy
        again at ``t + lag`` (0 disables repair: failures are
        permanent).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        n_modules: int,
        failure_rate: float,
        repair_lag: int = 0,
        seed: int = 0,
    ):
        if not 0 <= failure_rate <= 1:
            raise ValueError("failure_rate must be in [0, 1]")
        if repair_lag < 0:
            raise ValueError("repair_lag must be >= 0")
        self.n_modules = n_modules
        self.failure_rate = failure_rate
        self.repair_lag = repair_lag
        self.rng = np.random.default_rng(seed)
        self._down_until = np.zeros(n_modules, dtype=np.int64)  # 0 = healthy
        self._clock = 0

    def step(self) -> np.ndarray:
        """Advance one step; returns the currently failed module ids.

        ``_down_until`` is exclusive: a module is down while
        ``clock < down_until``, so a failure at step ``t`` with lag L is
        down for exactly the L steps ``t .. t + L - 1``.
        """
        self._clock += 1
        healthy = self._down_until <= self._clock
        fail_draw = self.rng.random(self.n_modules) < self.failure_rate
        new_failures = healthy & fail_draw
        until = (
            self._clock + self.repair_lag
            if self.repair_lag
            else np.iinfo(np.int64).max
        )
        self._down_until[new_failures] = until
        return np.nonzero(self._down_until > self._clock)[0]

    @property
    def clock(self) -> int:
        """Logical time of the schedule."""
        return self._clock


@dataclass
class AvailabilityTrace:
    """Per-step availability telemetry of a long run."""

    steps: int
    failed_per_step: list[int] = field(default_factory=list)
    unavailable_per_step: list[int] = field(default_factory=list)
    reads_correct: bool = True

    @property
    def worst_unavailable(self) -> int:
        """Max simultaneously unavailable variables over the run."""
        return max(self.unavailable_per_step, default=0)


def simulate_availability(
    scheme: MemoryScheme,
    indices: np.ndarray,
    schedule: FaultSchedule,
    steps: int,
    seed: int = 0,
) -> AvailabilityTrace:
    """Run ``steps`` read batches over a failing/repairing module pool.

    Writes the data once while healthy, then reads the whole set every
    step under the evolving failure set; verifies every *available*
    variable returns its exact value.
    """
    indices = np.asarray(indices, dtype=np.int64)
    store = scheme.make_store()
    values = (indices * 7) % (1 << 30)
    scheme.write(indices, values=values, store=store, time=1)
    trace = AvailabilityTrace(steps=steps)
    _ = seed
    for t in range(steps):
        failed = schedule.step()
        res = scheme.read(
            indices,
            store=store,
            time=10 + t,
            failed_modules=failed,
            allow_partial=True,
        )
        bad = res.unsatisfiable if res.unsatisfiable is not None else np.array([], dtype=np.int64)
        survivors = np.setdiff1d(np.arange(indices.shape[0]), bad)
        if not (res.values[survivors] == values[survivors]).all():
            trace.reads_correct = False
        trace.failed_per_step.append(int(len(failed)))
        trace.unavailable_per_step.append(int(bad.size))
    return trace
