"""Timestamped module storage -- the physical cells behind the copies.

Each module owns ``slots`` cells; a cell holds a (value, timestamp)
pair, exactly the copy layout of Upfal-Wigderson-style majority schemes
(Section 1 and 3 of the paper): a write stamps the copies it reaches
with the current logical time, a read trusts the freshest copy among the
majority it reached.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SharedCopyStore"]


class SharedCopyStore:
    """Dense (modules x slots) storage of timestamped copies.

    Parameters
    ----------
    n_modules:
        Number of memory modules.
    slots:
        Cells per module (``q^{n-1}`` for the paper's scheme).
    """

    def __init__(self, n_modules: int, slots: int):
        if n_modules <= 0 or slots <= 0:
            raise ValueError("n_modules and slots must be positive")
        self.n_modules = n_modules
        self.slots = slots
        self.values = np.zeros((n_modules, slots), dtype=np.int64)
        self.stamps = np.full((n_modules, slots), -1, dtype=np.int64)

    def write(
        self, modules: np.ndarray, slots: np.ndarray, values: np.ndarray, time: int | np.ndarray
    ) -> None:
        """Vectorized write of (value, time) into cells (modules, slots)."""
        self.values[modules, slots] = values
        self.stamps[modules, slots] = time

    def read(
        self, modules: np.ndarray, slots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized read: returns (values, timestamps) of the cells."""
        return self.values[modules, slots], self.stamps[modules, slots]

    def footprint_bytes(self) -> int:
        """Memory used by the backing arrays."""
        return self.values.nbytes + self.stamps.nbytes

    def __repr__(self) -> str:
        return f"SharedCopyStore({self.n_modules} modules x {self.slots} slots)"
