"""Module Parallel Computer (MPC) simulator.

The MPC [MV84] is the abstract machine of the paper: ``N`` processors
and ``N`` memory modules joined by a complete bipartite interconnect;
in each synchronous time step a module fulfills at most one read/write
request.  Access time for a request set is therefore the number of
simulated steps, which this package counts exactly.

* :mod:`repro.mpc.arbitration` -- per-step one-winner-per-module
  selection policies (deterministic lowest-id, seeded random, rotating);
* :mod:`repro.mpc.machine` -- the synchronous machine: step loop,
  conflict resolution, statistics;
* :mod:`repro.mpc.memory` -- timestamped module storage (the copy cells);
* :mod:`repro.mpc.stats` -- counters and per-step histories.
"""

from repro.mpc.machine import MPC
from repro.mpc.memory import SharedCopyStore
from repro.mpc.stats import MPCStats
from repro.mpc.arbitration import make_arbiter, Arbiter

__all__ = ["MPC", "SharedCopyStore", "MPCStats", "make_arbiter", "Arbiter"]
