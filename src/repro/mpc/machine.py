"""The synchronous Module Parallel Computer.

An :class:`MPC` executes steps: in a step every active processor
addresses one module, and each module serves exactly one of its pending
requests (chosen by the arbitration policy).  The machine enforces the
one-access-per-module-per-step contract, counts time, and reports
congestion -- the quantities all of the paper's bounds are about.
"""

from __future__ import annotations

import numpy as np

import repro.obs as _obs
from repro.mpc.arbitration import Arbiter, make_arbiter
from repro.mpc.stats import MPCStats

__all__ = ["MPC"]


class MPC:
    """N processors / N modules, complete interconnect, unit-time modules.

    Parameters
    ----------
    n_modules:
        Number of memory modules (the paper also sets the number of
        processors to this value, but the machine accepts any number of
        simultaneous requests -- processors are implicit).
    arbitration:
        Policy name: ``'lowest'`` (deterministic), ``'random'``,
        ``'rotating'``; see :mod:`repro.mpc.arbitration`.
    seed:
        Seed for the random policy.
    history:
        Keep a per-step served-count history in :attr:`stats`.
    """

    def __init__(
        self,
        n_modules: int,
        arbitration: str | Arbiter = "lowest",
        seed: int = 0,
        history: bool = False,
    ):
        if n_modules <= 0:
            raise ValueError("n_modules must be positive")
        self.n_modules = n_modules
        self.arbiter: Arbiter = (
            make_arbiter(arbitration, seed)
            if isinstance(arbitration, str)
            else arbitration
        )
        self.stats = MPCStats(keep_history=history)

    def step(
        self, module_ids: np.ndarray, blocked: np.ndarray | None = None
    ) -> np.ndarray:
        """Execute one synchronous step.

        Parameters
        ----------
        module_ids:
            int64 array; entry ``i`` is the module addressed by pending
            request ``i`` (processor order).
        blocked:
            Optional ``(n_modules,)`` bool mask of modules that receive
            requests but do not answer this step (grey/slow modules
            under fault injection).  Blocked requests still count toward
            congestion -- the module's queue is real, its service isn't.

        Returns
        -------
        Indices (into ``module_ids``) of the requests served this step --
        exactly one per distinct module.
        """
        module_ids = np.asarray(module_ids, dtype=np.int64)
        if module_ids.size == 0:
            # An idle step still advances time.
            self.stats.record_step(0, 0, 0)
            if _obs.enabled():
                _obs.on_mpc_step(0, 0, 0)
            return np.empty(0, dtype=np.int64)
        if np.any((module_ids < 0) | (module_ids >= self.n_modules)):
            raise ValueError("request addresses a nonexistent module")
        if blocked is None:
            winners = self.arbiter(module_ids)
        else:
            blocked = np.asarray(blocked, dtype=bool)
            if blocked.shape != (self.n_modules,):
                raise ValueError(
                    f"blocked mask must have shape ({self.n_modules},)"
                )
            idx_open = np.nonzero(~blocked[module_ids])[0]
            if idx_open.size == 0:
                # every addressed module is silent: an empty step
                _, counts = np.unique(module_ids, return_counts=True)
                congestion = int(counts.max())
                self.stats.record_step(module_ids.size, 0, congestion)
                if _obs.enabled():
                    _obs.on_mpc_step(int(module_ids.size), 0, congestion)
                return np.empty(0, dtype=np.int64)
            winners = idx_open[self.arbiter(module_ids[idx_open])]
        # contract check: winners hit distinct modules
        served_mods = module_ids[winners]
        # congestion over the *requested* modules only (O(k log k), not O(N))
        _, counts = np.unique(module_ids, return_counts=True)
        congestion = int(counts.max())
        if np.unique(served_mods).size != served_mods.size:
            raise AssertionError("arbiter served a module twice in one step")
        self.stats.record_step(module_ids.size, winners.size, congestion)
        if _obs.enabled():
            _obs.on_mpc_step(int(module_ids.size), int(winners.size), congestion)
        return winners

    def step_scalar(
        self,
        module_ids: "np.ndarray | list[int]",
        blocked: "np.ndarray | list[bool] | None" = None,
    ) -> list[int]:
        """One synchronous step, executed one request at a time.

        The scalar reference path of the engine switch
        (:mod:`repro.core.engine`): per-module winner selection happens
        in a plain Python dict scan instead of a sort, driven by the
        *same* arbitration priorities (:meth:`Arbiter.priorities`, same
        RNG stream for the random policy) and folding the same numbers
        into :attr:`stats`, so a scalar run is step-for-step comparable
        with :meth:`step`.  Winners are returned sorted by module id --
        the order the vectorized sort produces.
        """
        ids = [int(m) for m in module_ids]
        k = len(ids)
        if k == 0:
            # An idle step still advances time.
            self.stats.record_step(0, 0, 0)
            if _obs.enabled():
                _obs.on_mpc_step(0, 0, 0)
            return []
        counts: dict[int, int] = {}
        for m in ids:
            if m < 0 or m >= self.n_modules:
                raise ValueError("request addresses a nonexistent module")
            counts[m] = counts.get(m, 0) + 1
        congestion = max(counts.values())
        if blocked is None:
            open_pos = list(range(k))
        else:
            if len(blocked) != self.n_modules:
                raise ValueError(
                    f"blocked mask must have shape ({self.n_modules},)"
                )
            open_pos = [p for p in range(k) if not blocked[ids[p]]]
            if not open_pos:
                # every addressed module is silent: an empty step
                self.stats.record_step(k, 0, congestion)
                if _obs.enabled():
                    _obs.on_mpc_step(k, 0, congestion)
                return []
        prio = self.arbiter.priorities(len(open_pos))
        best: dict[int, tuple[int, int]] = {}
        for rank, p in enumerate(open_pos):
            m = ids[p]
            pr = int(prio[rank])
            cur = best.get(m)
            if cur is None or pr < cur[0]:
                best[m] = (pr, p)
        winners = [best[m][1] for m in sorted(best)]
        self.stats.record_step(k, len(winners), congestion)
        if _obs.enabled():
            _obs.on_mpc_step(k, len(winners), congestion)
        return winners

    def reset(self) -> None:
        """Clear statistics (keeps the arbitration policy object)."""
        keep = self.stats.keep_history
        self.stats = MPCStats(keep_history=keep)

    def __repr__(self) -> str:
        return f"MPC(n_modules={self.n_modules}, steps={self.stats.steps})"
