"""Single-copy baseline: one copy per variable, no redundancy.

The strawman that motivates the whole granularity problem: when every
requested variable happens to live in the same module, the MPC serves
them one per step and the access takes Theta(N') time.  Placement is
either plain ``v mod N`` (``hashed=False``; makes the adversarial
workload transparent) or a seeded hash (which only hides, but cannot
remove, the worst case -- the adversary can invert a *fixed* hash).
"""

from __future__ import annotations

import numpy as np

from repro.schemes.base import MemoryScheme
from repro.schemes.hashing import hash_to_range

__all__ = ["SingleCopyScheme"]


class SingleCopyScheme(MemoryScheme):
    """One copy per variable; read quorum = write quorum = 1."""

    name = "single-copy"

    def __init__(self, N: int, M: int, hashed: bool = True, seed: int = 0):
        if M < N:
            raise ValueError("expect M >= N for the granularity problem")
        self.N = N
        self.M = M
        self.copies_per_variable = 1
        self.read_quorum = 1
        self.write_quorum = 1
        self.hashed = hashed
        self.seed = seed

    def placement(self, indices: np.ndarray) -> np.ndarray:
        """``(V, 1)`` module of the unique copy."""
        indices = np.asarray(indices, dtype=np.int64)
        if self.hashed:
            mods = hash_to_range(indices, self.N, seed=self.seed)
        else:
            mods = indices % self.N
        return mods[:, None]

    def adversarial_request_set(
        self, count: int, target_module: int | None = None
    ) -> np.ndarray:
        """``count`` distinct variables all stored in one module
        (inverts the placement; Theta(count) access time guaranteed).

        With ``target_module=None`` the fullest module is chosen -- the
        strongest attack the store admits (capacity ~ M/N per module).
        """
        if target_module is None:
            target_module = self.fullest_module()
        if self.hashed:
            # Invert by scanning -- the adversary knows the fixed hash.
            found = []
            block = 1 << 16
            start = 0
            while len(found) < count and start < self.M:
                idx = np.arange(start, min(self.M, start + block), dtype=np.int64)
                hit = idx[hash_to_range(idx, self.N, seed=self.seed) == target_module]
                found.extend(hit.tolist())
                start += block
            if len(found) < count:
                raise ValueError(f"module {target_module} stores fewer than {count} variables")
            return np.array(found[:count], dtype=np.int64)
        base = np.arange(count, dtype=np.int64) * self.N + target_module
        if base[-1] >= self.M:
            raise ValueError(f"module {target_module} stores fewer than {count} variables")
        return base

    def fullest_module(self) -> int:
        """Module holding the most variables under this placement."""
        if not self.hashed:
            return 0
        mods = hash_to_range(np.arange(self.M, dtype=np.int64), self.N, seed=self.seed)
        return int(np.bincount(mods, minlength=self.N).argmax())

    def max_module_load(self) -> int:
        """Occupancy of the fullest module (the cap on this scheme's
        single-module worst case)."""
        if not self.hashed:
            return -(-self.M // self.N)
        mods = hash_to_range(np.arange(self.M, dtype=np.int64), self.N, seed=self.seed)
        return int(np.bincount(mods, minlength=self.N).max())
