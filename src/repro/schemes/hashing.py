"""Deterministic integer mixers for seeded pseudo-random placements.

A splitmix64-style avalanche over numpy uint64 arrays: stateless,
vectorized, and reproducible across runs -- exactly what the baseline
schemes need to define a "random" copy placement as a pure function of
(seed, variable, copy).
"""

from __future__ import annotations

import numpy as np

__all__ = ["mix64", "hash_to_range", "distinct_hash_modules"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)


def mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer: a bijective avalanche on uint64."""
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = x + _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _M1
        z = (z ^ (z >> np.uint64(27))) * _M2
        z = z ^ (z >> np.uint64(31))
    return z


def hash_to_range(keys: np.ndarray, n: int, seed: int = 0, salt: int = 0) -> np.ndarray:
    """Map integer keys pseudo-randomly into ``[0, n)`` (vectorized)."""
    keys = np.asarray(keys, dtype=np.uint64)
    with np.errstate(over="ignore"):
        mixed = mix64(keys ^ mix64(np.uint64(seed) + (np.uint64(salt) << np.uint64(32))))
    return (mixed % np.uint64(n)).astype(np.int64)


def distinct_hash_modules(
    indices: np.ndarray, r: int, n_modules: int, seed: int = 0
) -> np.ndarray:
    """``(V, r)`` pseudo-random module ids, distinct within each row.

    Rows are resalted until collision-free; with r << sqrt(N) the
    expected number of passes is ~1.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if r > n_modules:
        raise ValueError(f"cannot place {r} distinct copies in {n_modules} modules")
    V = indices.shape[0]
    out = np.empty((V, r), dtype=np.int64)
    for j in range(r):
        out[:, j] = hash_to_range(indices, n_modules, seed=seed, salt=j)
    salt = r
    for _ in range(64):
        sorted_rows = np.sort(out, axis=1)
        bad = (sorted_rows[:, 1:] == sorted_rows[:, :-1]).any(axis=1)
        if not bad.any():
            return out
        # Re-draw one colliding column per bad row; cheap because rare.
        rows = np.nonzero(bad)[0]
        for i in rows:
            row = out[i]
            seen: set[int] = set()
            for j in range(r):
                while int(row[j]) in seen:
                    row[j] = int(
                        hash_to_range(
                            np.array([indices[i]]), n_modules, seed=seed, salt=salt + j
                        )[0]
                    )
                    salt += 1
                seen.add(int(row[j]))
        salt += r
    raise RuntimeError("could not derandomize duplicate modules")  # pragma: no cover
