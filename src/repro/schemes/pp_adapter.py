"""The paper's scheme wrapped in the common baseline interface.

:class:`~repro.core.scheme.PPScheme` has a richer API (physical slots,
O(log N) addressing); the adapter exposes just the
:class:`~repro.schemes.base.MemoryScheme` surface so the comparison
harness can iterate over all schemes uniformly.  Unlike the baselines
it uses the dense slot layout of Section 4, so ``make_store`` returns
the real dense store.
"""

from __future__ import annotations

import numpy as np

from repro.core.scheme import PPScheme
from repro.schemes.base import MemoryScheme

__all__ = ["PPAdapter"]


class PPAdapter(MemoryScheme):
    """Pietracaprina-Preparata scheme behind the MemoryScheme interface."""

    name = "pietracaprina-preparata"

    def __init__(self, q: int = 2, n: int = 5):
        self.scheme = PPScheme(q=q, n=n)
        self.N = self.scheme.N
        self.M = self.scheme.M
        self.copies_per_variable = self.scheme.copies_per_variable
        self.read_quorum = self.scheme.majority
        self.write_quorum = self.scheme.majority

    def placement(self, indices: np.ndarray) -> np.ndarray:
        """``(V, q+1)`` module ids via the O(log N) addressing layer."""
        return self.scheme.module_ids_for(indices)

    def slots(self, indices: np.ndarray, modules: np.ndarray) -> np.ndarray:
        """Physical Lemma-4 slots (dense layout)."""
        mats = self.scheme.addressing.vunrank(np.asarray(indices, dtype=np.int64))
        return self.scheme._vslots(mats, modules)

    def make_store(self) -> object:
        """Dense (N x q^{n-1}) timestamped store."""
        return self.scheme.make_store()
