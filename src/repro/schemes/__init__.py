"""Baseline memory-organization schemes the paper positions itself against.

All schemes implement the :class:`~repro.schemes.base.MemoryScheme`
interface (placement of copies + read/write quorums) and are driven by
the same MPC protocol engine (:mod:`repro.core.protocol`), so measured
access times are directly comparable:

* :mod:`repro.schemes.single_copy` -- one copy per variable (hashing);
  the granularity-problem strawman with Theta(N) adversarial time;
* :mod:`repro.schemes.mehlhorn_vishkin` -- [MV84]: c copies, reads
  touch any 1 copy (O(c N^{1-1/c})), writes touch all c (Theta(cN)
  adversarial);
* :mod:`repro.schemes.upfal_wigderson` -- [UW87]: 2c-1 copies placed by
  a seeded random graph, majority-c reads *and* writes (the paper's PP
  scheme keeps this protocol but replaces the random graph with the
  constructive PGL2 graph);
* :mod:`repro.schemes.pp_adapter` -- :class:`PPScheme` wrapped in the
  same interface for the comparison harness.
"""

from repro.schemes.base import MemoryScheme, KeyedCopyStore
from repro.schemes.single_copy import SingleCopyScheme
from repro.schemes.mehlhorn_vishkin import MehlhornVishkinScheme
from repro.schemes.upfal_wigderson import UpfalWigdersonScheme
from repro.schemes.pp_adapter import PPAdapter
from repro.schemes.grid import GridScheme

__all__ = [
    "MemoryScheme",
    "KeyedCopyStore",
    "SingleCopyScheme",
    "MehlhornVishkinScheme",
    "UpfalWigdersonScheme",
    "PPAdapter",
    "GridScheme",
]
