"""Upfal-Wigderson random-graph majority scheme [UW87].

``2c - 1`` copies per variable in distinct modules, chosen by a seeded
random bipartite graph; reads and writes both touch a majority of ``c``
copies carrying timestamps.  [UW87] prove that a *random* graph has the
required expansion w.h.p. but give no construction, no efficient test,
and no compact memory map -- the three criticisms that motivate the
paper.  Sampling a graph from a seed is therefore a faithful rendering
of their scheme (and the per-variable hash placement stands in for the
impractical full memory map; we charge no cost for it, which only
*favours* this baseline in comparisons).
"""

from __future__ import annotations

import numpy as np

from repro.schemes.base import MemoryScheme
from repro.schemes.hashing import distinct_hash_modules

__all__ = ["UpfalWigdersonScheme"]


class UpfalWigdersonScheme(MemoryScheme):
    """2c-1 copies, majority-c read and write quorums, random placement."""

    name = "upfal-wigderson"

    def __init__(self, N: int, M: int, c: int = 2, seed: int = 0):
        if c < 2:
            raise ValueError("c must be >= 2 (2c-1 >= 3 copies)")
        r = 2 * c - 1
        if r > N:
            raise ValueError("more copies than modules")
        self.N = N
        self.M = M
        self.c = c
        self.copies_per_variable = r
        self.read_quorum = c
        self.write_quorum = c
        self.seed = seed

    def placement(self, indices: np.ndarray) -> np.ndarray:
        """``(V, 2c-1)`` distinct seeded-random modules per variable."""
        return distinct_hash_modules(
            indices, self.copies_per_variable, self.N, seed=self.seed
        )

    @classmethod
    def log_copies(cls, N: int, M: int, seed: int = 0) -> "UpfalWigdersonScheme":
        """The [UW87] theory configuration ``c = Theta(log N)`` (they use
        it to reach polylog access time)."""
        import math

        c = max(2, int(math.ceil(math.log2(max(4, N)) / 2)))
        return cls(N, M, c=c, seed=seed)
