"""Mehlhorn-Vishkin multi-copy scheme [MV84].

Each variable keeps ``c`` copies; a *read* may use any single copy (the
"most convenient" one -- our protocol engine realizes exactly that with
read quorum 1), but a *write* must refresh all ``c`` copies (write
quorum c), which is the asymmetry the paper's majority approach removes.

Placement is the constructive Reed-Solomon style arrangement: the
module space is split into ``c`` groups of ``floor(N / c)`` modules;
variable ``v`` is identified with the degree-<c polynomial ``p_v`` over
``Z_P`` (P = largest prime <= N/c) whose coefficients are the base-P
digits of ``v``, and copy ``j`` lives in group ``j`` at position
``p_v(x_j) mod P`` for fixed distinct evaluation points ``x_j``.  Two
distinct variables then collide on at most ``c - 1`` copy positions
(polynomial agreement bound) -- the property [MV84]'s O(c N^{1-1/c})
read bound rests on.  Requires ``M <= P^c``.
"""

from __future__ import annotations

import numpy as np

from repro.gf.modular import is_prime
from repro.schemes.base import MemoryScheme

__all__ = ["MehlhornVishkinScheme", "largest_prime_at_most"]


def largest_prime_at_most(n: int) -> int:
    """The largest prime <= n (n >= 2)."""
    if n < 2:
        raise ValueError("no prime <= 1")
    p = n
    while not is_prime(p):
        p -= 1
    return p


class MehlhornVishkinScheme(MemoryScheme):
    """c copies; read quorum 1, write quorum c."""

    name = "mehlhorn-vishkin"

    def __init__(self, N: int, M: int, c: int = 3):
        if c < 2:
            raise ValueError("c must be >= 2")
        P = largest_prime_at_most(N // c)
        if M > P**c:
            raise ValueError(
                f"M = {M} exceeds P^c = {P**c}; increase c or N"
            )
        self.N = N
        self.M = M
        self.c = c
        self.P = P
        self.copies_per_variable = c
        self.read_quorum = 1
        self.write_quorum = c
        # distinct evaluation points; x_0 = 0 keeps the adversary simple
        self.eval_points = np.arange(c, dtype=np.int64)

    def coefficients(self, indices: np.ndarray) -> np.ndarray:
        """``(V, c)`` base-P digit expansion (a_0 least significant)."""
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty((indices.shape[0], self.c), dtype=np.int64)
        rem = indices.copy()
        for i in range(self.c):
            out[:, i] = rem % self.P
            rem //= self.P
        return out

    def from_coefficients(self, coeffs: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`coefficients`."""
        coeffs = np.asarray(coeffs, dtype=np.int64)
        out = np.zeros(coeffs.shape[0], dtype=np.int64)
        for i in range(self.c - 1, -1, -1):
            out = out * self.P + coeffs[:, i]
        return out

    def placement(self, indices: np.ndarray) -> np.ndarray:
        """``(V, c)``: copy j at module ``j * floor(N/c) + p_v(x_j) mod P``."""
        coeffs = self.coefficients(indices)
        group = self.N // self.c
        V = coeffs.shape[0]
        out = np.empty((V, self.c), dtype=np.int64)
        for j in range(self.c):
            x = int(self.eval_points[j])
            acc = np.zeros(V, dtype=np.int64)
            for i in range(self.c - 1, -1, -1):
                acc = (acc * x + coeffs[:, i]) % self.P
            out[:, j] = j * group + acc
        return out

    def interpolate_variables(self, values_grid: list[np.ndarray]) -> np.ndarray:
        """Theorem-7 adversary helper: variable indices whose copy-j
        positions hit ``values_grid[j]`` for every j (Lagrange
        interpolation over the Cartesian product of the per-copy value
        sets).  Returns at most ``prod(len(grid_j))`` distinct indices.
        """
        import itertools

        P = self.P
        xs = [int(x) for x in self.eval_points]
        out = []
        for combo in itertools.product(*[list(map(int, g)) for g in values_grid]):
            coeffs = _lagrange_coeffs(xs, list(combo), P)
            v = 0
            for a in reversed(coeffs):
                v = v * P + a
            if v < self.M:
                out.append(v)
        return np.unique(np.array(out, dtype=np.int64))

    def adversarial_write_set(self, count: int, target_position: int = 0) -> np.ndarray:
        """``count`` distinct variables whose copy 0 lands in the same
        module (all with ``p_v(0) = a_0 = target_position``): a write
        burst on them serializes on that module -- the Theta(cN) write
        worst case of [MV84]."""
        if count > self.M // self.P + 1:
            raise ValueError("not enough variables share a copy-0 module")
        base = np.arange(count, dtype=np.int64) * self.P + target_position
        base = base[base < self.M]
        if base.shape[0] < count:
            raise ValueError("not enough variables below M")
        return base


def _lagrange_coeffs(xs: list[int], ys: list[int], p: int) -> list[int]:
    """Coefficients (a_0..a_{c-1}) of the unique degree-<c polynomial
    through the points (xs, ys) over Z_p."""
    c = len(xs)
    coeffs = [0] * c
    for i in range(c):
        # basis poly L_i = prod_{j != i} (x - x_j) / (x_i - x_j)
        num = [1]
        denom = 1
        for j in range(c):
            if j == i:
                continue
            # multiply num by (x - x_j)
            new = [0] * (len(num) + 1)
            for k, a in enumerate(num):
                new[k + 1] = (new[k + 1] + a) % p
                new[k] = (new[k] - a * xs[j]) % p
            num = new
            denom = denom * (xs[i] - xs[j]) % p
        scale = ys[i] * pow(denom, -1, p) % p
        for k, a in enumerate(num):
            coeffs[k] = (coeffs[k] + a * scale) % p
    return coeffs
