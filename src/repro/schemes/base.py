"""Common interface for memory-organization schemes.

A scheme answers one structural question -- *where are the copies of
variable v?* -- and declares how many copies an operation must reach
(read/write quorums).  The shared MPC protocol engine does the rest, so
every scheme is measured under identical machine semantics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from time import perf_counter as _perf_counter

import numpy as np

import repro.obs as _obs
from repro.core.protocol import AccessResult, run_access_protocol

__all__ = ["MemoryScheme", "KeyedCopyStore"]


class KeyedCopyStore:
    """Sparse timestamped copy storage keyed by (module, slot).

    Baseline schemes have no compact physical slot structure (that is
    one of the paper's criticisms), so their cells are materialized
    lazily in a dict.  Array-API compatible with
    :class:`~repro.mpc.memory.SharedCopyStore` (semantics-test scale).
    """

    def __init__(self, n_modules: int):
        self.n_modules = n_modules
        self._cells: dict[tuple[int, int], tuple[int, int]] = {}

    def write(
        self,
        modules: np.ndarray,
        slots: np.ndarray,
        values: np.ndarray,
        time: int | np.ndarray,
    ) -> None:
        """Write (value, time) to each (module, slot) cell."""
        times = np.broadcast_to(np.asarray(time), np.shape(modules))
        for m, s, v, t in zip(
            np.ravel(modules), np.ravel(slots), np.ravel(values), np.ravel(times)
        ):
            self._cells[(int(m), int(s))] = (int(v), int(t))

    def read(
        self, modules: np.ndarray, slots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Read (values, stamps); unwritten cells give (0, -1)."""
        vals = np.empty(np.shape(modules), dtype=np.int64).ravel()
        stamps = np.empty_like(vals)
        for i, (m, s) in enumerate(zip(np.ravel(modules), np.ravel(slots))):
            v, t = self._cells.get((int(m), int(s)), (0, -1))
            vals[i] = v
            stamps[i] = t
        return vals.reshape(np.shape(modules)), stamps.reshape(np.shape(modules))


class MemoryScheme(ABC):
    """Abstract memory-organization scheme over N modules and M variables.

    Subclasses define :meth:`placement` plus the quorum attributes; the
    base class supplies protocol-driven ``access``/``read``/``write``
    with exactly the machine model used for the paper's scheme.
    """

    #: number of memory modules
    N: int
    #: number of shared variables
    M: int
    #: copies per variable (the redundancy r)
    copies_per_variable: int
    #: copies a read must reach
    read_quorum: int
    #: copies a write must reach
    write_quorum: int
    #: short display name for tables
    name: str = "abstract"

    @abstractmethod
    def placement(self, indices: np.ndarray) -> np.ndarray:
        """``(V, r)`` module ids of the copies of each variable; entries
        in a row are distinct."""

    def slots(self, indices: np.ndarray, modules: np.ndarray) -> np.ndarray:
        """``(V, r)`` physical slots.  Default: the variable index itself
        (valid for sparse keyed stores); dense schemes override."""
        return np.broadcast_to(
            np.asarray(indices, dtype=np.int64)[:, None], modules.shape
        )

    def make_store(self) -> object:
        """A store suited to this scheme (sparse keyed by default)."""
        return KeyedCopyStore(self.N)

    def quorum_for(self, op: str) -> int:
        """Copies that must be reached for the given operation."""
        if op == "read":
            return self.read_quorum
        if op == "write":
            return self.write_quorum
        return self.read_quorum  # 'count' defaults to read cost

    def access(
        self,
        indices: np.ndarray,
        op: str = "count",
        *,
        store: object | None = None,
        values: np.ndarray | None = None,
        time: int = 0,
        arbitration: str = "lowest",
        seed: int = 0,
        collect_history: bool = False,
        count_as: str | None = None,
        failed_modules: np.ndarray | None = None,
        allow_partial: bool = False,
        grey_modules: np.ndarray | None = None,
        retry_limit: int | None = None,
        engine: str | None = None,
        var_base: int = 0,
    ) -> AccessResult:
        """Run the protocol engine for a batch of distinct variables.

        ``op='count'`` measures cost without touching cells; pass
        ``count_as='write'`` to count with the write quorum.  The fault
        kwargs (``failed_modules``, ``grey_modules``, ``retry_limit``,
        ``allow_partial``) inject module faults identically for every
        scheme -- see :func:`~repro.core.protocol.run_access_protocol`.
        ``engine`` selects scalar-oracle or vectorized execution
        (:mod:`repro.core.engine`), identically for every scheme.
        ``var_base`` offsets the *emitted* variable ids (``mem.op``
        events) without touching placement -- systems that run several
        scheme instances side by side (the sharded service) give each a
        disjoint id namespace so the conformance checker never aliases
        two shards' variables.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if np.unique(indices).size != indices.size:
            raise ValueError("requests must address distinct variables")
        led = _obs.ledger() if _obs.enabled() else None
        if led is not None:
            t0 = _perf_counter()
            gf0 = led.gf.as_dict()
        modules = self.placement(indices)
        quorum = self.quorum_for(count_as or op)
        slots = None
        engine_op = op
        if op in ("read", "write"):
            slots = self.slots(indices, modules)
        if led is not None:
            led.note_addressing(int(indices.size), _perf_counter() - t0, gf0)
        return run_access_protocol(
            modules,
            self.N,
            quorum,
            op=engine_op,
            slots=slots,
            store=store,
            values=values,
            time=time,
            arbitration=arbitration,
            seed=seed,
            collect_history=collect_history,
            failed_modules=failed_modules,
            allow_partial=allow_partial,
            grey_modules=grey_modules,
            retry_limit=retry_limit,
            var_ids=indices + var_base if var_base else indices,
            engine=engine,
        )

    def read(
        self, indices: np.ndarray, store: object, time: int, **kw: object
    ) -> AccessResult:
        """Quorum read; ``.values`` holds the freshest values."""
        return self.access(indices, op="read", store=store, time=time, **kw)

    def write(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        store: object,
        time: int,
        **kw: object,
    ) -> AccessResult:
        """Quorum write of ``values``."""
        return self.access(indices, op="write", store=store, values=values, time=time, **kw)

    def random_request_set(self, count: int, seed: int = 0) -> np.ndarray:
        """``count`` distinct variable indices, uniform, seeded."""
        if count > self.M:
            raise ValueError(f"cannot request {count} distinct of {self.M}")
        rng = np.random.default_rng(seed)
        if count * 4 >= self.M:
            return rng.permutation(self.M)[:count].astype(np.int64)
        return rng.choice(self.M, size=count, replace=False).astype(np.int64)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(N={self.N}, M={self.M}, "
            f"r={self.copies_per_variable})"
        )
