"""A [PP93]-style explicit scheme for M = Theta(N^2) variables.

The paper's introduction positions its own predecessor [PP93]: explicit
deterministic organizations for M = Theta(N^2) achieving O(sqrt(N))
worst-case access with constant redundancy and O(log N)/O(1)
addressing.  This module implements a constructive scheme with exactly
those parameters, so the M-vs-time tradeoff the two papers span can be
measured side by side (experiment E14):

* modules are split into 3 groups of ``P`` (P = largest prime <= N/3);
* variables are the points ``(i, j)`` of the P x P grid (M = P^2);
* the copies of ``(i, j)`` are the three *lines* through the point in
  directions row / column / diagonal: group-0 module ``i``, group-1
  module ``j``, group-2 module ``(i + j) mod P``;
* reads and writes use the majority (2 of 3) with timestamps.

Two distinct points share a line in at most one direction, so (as in
Theorem 2 of the main paper) any two variables collide in at most one
module; a k x k sub-grid has only Theta(k) neighbours per direction,
which caps expansion at Theta(sqrt(|S|)) and forces the Theta(sqrt(N'))
worst case -- the price of the larger M, per Theorem 7's
(M/N)^{1/3} = Theta(N^{1/3}) floor at M = Theta(N^2)... this scheme is
within sqrt of that floor, just as the SPAA'93 scheme is within a
square of its own floor.
"""

from __future__ import annotations

import numpy as np

from repro.schemes.base import MemoryScheme
from repro.schemes.mehlhorn_vishkin import largest_prime_at_most

__all__ = ["GridScheme"]


class GridScheme(MemoryScheme):
    """Three-direction line scheme over a P x P grid (M = P^2 = Theta(N^2))."""

    name = "pp93-grid"

    def __init__(self, N: int):
        if N < 9:
            raise ValueError("need at least 9 modules (3 groups of >= 3)")
        P = largest_prime_at_most(N // 3)
        self.N = N
        self.P = P
        self.M = P * P
        self.copies_per_variable = 3
        self.read_quorum = 2
        self.write_quorum = 2

    def point_of(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Grid coordinates (i, j) of variable indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return indices // self.P, indices % self.P

    def index_of(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Variable index of grid points."""
        return np.asarray(i, dtype=np.int64) * self.P + np.asarray(j, dtype=np.int64)

    def placement(self, indices: np.ndarray) -> np.ndarray:
        """``(V, 3)``: row line, column line, diagonal line (one module
        per direction group)."""
        i, j = self.point_of(indices)
        out = np.empty((i.shape[0], 3), dtype=np.int64)
        out[:, 0] = i
        out[:, 1] = self.P + j
        out[:, 2] = 2 * self.P + (i + j) % self.P
        return out

    def adversarial_block(self, k: int) -> np.ndarray:
        """The k x k sub-grid [0,k) x [0,k): |S| = k^2 variables whose
        copies live in only ~4k modules -- the Theta(sqrt(N')) worst case."""
        if k > self.P:
            raise ValueError(f"block size {k} exceeds grid dimension {self.P}")
        ii, jj = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
        return self.index_of(ii.reshape(-1), jj.reshape(-1))

    def line_variables(self, direction: int, index: int) -> np.ndarray:
        """All P variables on one line (direction 0=row, 1=col, 2=diag);
        these are exactly the variables stored by one module."""
        t = np.arange(self.P, dtype=np.int64)
        if direction == 0:
            return self.index_of(np.full(self.P, index), t)
        if direction == 1:
            return self.index_of(t, np.full(self.P, index))
        if direction == 2:
            return self.index_of(t, (index - t) % self.P)
        raise ValueError("direction must be 0, 1 or 2")
