"""repro -- a full reproduction of Pietracaprina & Preparata (SPAA 1993),
"A Practical Constructive Scheme for Deterministic Shared-Memory Access".

The package implements, from scratch:

* the algebraic substrate (finite fields :mod:`repro.gf`, the projective
  linear group :mod:`repro.pgl`);
* the paper's memory-organization graph ``G(V, U; E)`` over cosets of
  PGL2(q^n), its expansion analysis, the majority access protocol, and
  the O(log N) on-the-fly addressing layer (:mod:`repro.core`);
* a Module Parallel Computer simulator (:mod:`repro.mpc`);
* the baseline schemes the paper compares against: single-copy hashing,
  Mehlhorn-Vishkin multi-copy, and Upfal-Wigderson random-graph majority
  (:mod:`repro.schemes`);
* workload generators including adversarial constructions
  (:mod:`repro.workloads`) and analysis/reporting helpers
  (:mod:`repro.analysis`).

Quick start::

    from repro import PPScheme
    scheme = PPScheme(q=2, n=5)          # N = 1023 modules, 3 copies/var
    idx = scheme.random_request_set(512, seed=0)
    store = scheme.make_store()
    scheme.write(idx, values=idx, store=store, time=1)
    result = scheme.read(idx, store=store, time=2)
    assert (result.values == idx).all()
"""

from repro.core.graph import MemoryGraph
from repro.core.scheme import PPScheme
from repro.core.protocol import AccessResult
from repro.mpc.machine import MPC

__all__ = ["PPScheme", "MemoryGraph", "AccessResult", "MPC"]

__version__ = "1.0.0"
