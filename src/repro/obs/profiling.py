"""cProfile harness for the protocol hot path.

The 'measure before optimizing' entry point, importable so both the
``repro profile`` CLI subcommand and ``tools/profile_protocol.py`` share
one implementation.  Profiles a full-load count access (scheme build and
request generation excluded) and prints the top entries.
"""

from __future__ import annotations

import cProfile
import pstats
import sys

__all__ = ["SORT_KEYS", "profile_access"]

#: pstats sort keys the CLI accepts.
SORT_KEYS = ("cumulative", "tottime")


def profile_access(
    n: int = 9,
    count: int = 100_000,
    sort: str = "cumulative",
    limit: int = 15,
    stream=None,
    engine: str | None = None,
) -> pstats.Stats:
    """Profile one ``(q=2, n)`` count access of up to ``count`` requests.

    Prints ``limit`` entries sorted by ``sort`` ('cumulative' or
    'tottime') to ``stream`` (default stdout) and returns the
    :class:`pstats.Stats` for further inspection.  ``engine`` selects
    the protocol executor (:mod:`repro.core.engine`) -- profiling the
    scalar oracle shows where a per-processor implementation burns its
    time, which is exactly what the vector path amortizes away.
    """
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    from repro.core.engine import resolve_engine
    from repro.core.scheme import PPScheme

    stream = stream or sys.stdout
    eng = resolve_engine(engine)
    scheme = PPScheme(2, n)
    count = min(count, scheme.N, scheme.M)
    idx = scheme.random_request_set(count, seed=0)

    prof = cProfile.Profile()
    prof.enable()
    res = scheme.access(idx, op="count", engine=eng)
    prof.disable()

    print(
        f"N = {scheme.N}, requests = {count}, engine = {eng}, "
        f"Phi = {res.max_phase_iterations}",
        file=stream,
    )
    stats = pstats.Stats(prof, stream=stream)
    stats.sort_stats(sort).print_stats(limit)
    return stats
