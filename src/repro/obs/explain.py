"""Theory-vs-measured explain driver: fit, check, and render envelopes.

This is the consumer of the bound-accounting ledger
(:mod:`repro.obs.ledger`) and the bound registry
(:class:`repro.core.bounds.BoundRegistry`).  For each conformance
scheme (the six of :data:`repro.conformance.streaming.SCHEME_KEYS`) it

1. runs a **calibration sweep** -- a few request sizes ``N'`` under
   seed A -- and fits the hidden constant of each theorem envelope
   (Theorem 1 rounds, Theorem 6 ``Phi``, Theorem 8 field ops per
   address, balanced-load congestion p95);
2. runs **check** batches at two further ``N'`` sizes under seed B and
   verifies every measured quantity sits inside its fitted envelope;
3. runs a seeded **congestion attack** -- the single-copy baseline's
   placement-inverting collision set (every request stored on one
   module) -- that *must* bust the congestion envelope; a dead canary
   means the envelopes are too loose to flag anything.  The analogous
   module-neighbourhood attack on the paper's scheme stays *within*
   envelope -- the Theorem 4/5 expansion disperses it, which is the
   paper's point -- so the baseline is the honest canary target;
4. aggregates the wall-clock **attribution tree** across every
   measured run (leaves must cover >= ``coverage_min`` of the measured
   total) and renders everything to
   ``benchmarks/results/explain_report.md``.

Every measured run executes with a bus installed, so the protocol's
``ledger.batch`` events stream to the same :class:`HealthAggregator`
the live watchdog uses; the report records how many arrived.

The counts (rounds, ``Phi``, retries, field ops, congestion quantiles)
are deterministic for a given seed; only the seconds columns vary
between machines.  ``python -m repro explain --check`` exits non-zero
when a check run violates an envelope, the attack is *not* flagged, or
attribution coverage falls below the floor.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

import repro.obs as _obs
from repro.core.bounds import (
    ENVELOPE_QUANTITIES,
    BoundRegistry,
    BoundViolation,
    Envelope,
    RunContext,
)
from repro.obs.ledger import PHASE_KEYS, Ledger
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import EventBus, HealthAggregator

__all__ = [
    "RunMeasurement",
    "CheckRow",
    "SchemeReport",
    "ExplainResult",
    "run_explain",
    "render_markdown",
    "write_report",
    "DEFAULT_REPORT_PATH",
]

DEFAULT_REPORT_PATH = os.path.join(
    "benchmarks", "results", "explain_report.md"
)

#: N' sweep points as fractions of each scheme's M (the schemes range
#: from M=84 to M=4368, so absolute sizes cannot be shared).
_CAL_FRACS = (0.125, 0.25, 0.5)
_CHECK_FRACS = (0.1875, 0.375)
#: calibration seeds (seed A family) and the disjoint check seed B
_CAL_SEEDS = (11, 12)
_CHECK_SEED = 23
_ATTACK_SEED = 31


def _sweep_sizes(m: int, fracs: tuple[float, ...]) -> list[int]:
    """Distinct N' sizes for a scheme with ``m`` variables."""
    return sorted({max(4, int(m * f)) for f in fracs})


def _dlog_weight(scheme: object) -> int:
    """Steps one discrete log is charged (the paper's scheme pays
    ``n ~ log N`` per dlog; schemes that never touch GF(2^m) keep 1)."""
    inner = getattr(scheme, "scheme", None)
    n = getattr(inner, "n", None)
    return int(n) if n else 1


@dataclass(frozen=True)
class RunMeasurement:
    """Ledger readout of one measured write+read run."""

    ctx: RunContext
    quantities: dict[str, float]
    congestion: dict[str, float]
    counters: dict[str, int]
    gf_ops: dict[str, int]
    seconds: dict[str, float]
    total_seconds: float
    batch_events: int


@dataclass(frozen=True)
class CheckRow:
    """One check run with its per-quantity envelope verdicts."""

    measurement: RunMeasurement
    bounds: dict[str, float]
    violations: list[BoundViolation]


@dataclass
class SchemeReport:
    """Everything explain learned about one scheme."""

    key: str
    N: int
    M: int
    copies: int
    envelopes: list[Envelope] = field(default_factory=list)
    calibration: list[RunMeasurement] = field(default_factory=list)
    checks: list[CheckRow] = field(default_factory=list)


@dataclass
class ExplainResult:
    """The full explain run: per-scheme reports plus global verdicts."""

    schemes: list[SchemeReport]
    attack: CheckRow
    attack_flagged: bool
    attribution: dict[str, object]
    coverage_min: float
    slack: float
    bus_events: int
    watch_congestion_p95: float | None

    @property
    def check_violations(self) -> list[BoundViolation]:
        """Envelope violations across all *non-attack* check runs."""
        return [v for s in self.schemes for row in s.checks for v in row.violations]

    @property
    def coverage(self) -> float:
        """Fraction of the measured wall time the phase tree explains."""
        return float(self.attribution["coverage"])  # type: ignore[arg-type]

    @property
    def ok(self) -> bool:
        """Acceptance: checks clean, canary alive, attribution covered."""
        return (
            not self.check_violations
            and self.attack_flagged
            and self.coverage >= self.coverage_min
        )


def _measure_run(
    scheme: object,
    key: str,
    indices: np.ndarray,
    seed: int,
    bus_sub: object | None,
) -> RunMeasurement:
    """One ledgered write+read batch pair; returns the ledger readout."""
    indices = np.asarray(indices, dtype=np.int64)
    store = scheme.make_store()
    values = np.arange(1, indices.size + 1, dtype=np.int64)
    led = Ledger()
    prev = _obs.set_ledger(led)
    try:
        with led.run():
            scheme.write(indices, values, store, time=1, seed=seed)
            scheme.read(indices, store, time=2, seed=seed + 1)
    finally:
        _obs.set_ledger(prev)
    rounds = sum(rec.rounds for rec in led.batches)
    phi = max((rec.phi for rec in led.batches), default=0)
    computed = led.counters.get("addr.computed", 0)
    ops = led.addressing_ops
    weighted = ops.add + ops.mul + ops.exp + ops.dlog * _dlog_weight(scheme)
    addr_field_ops = (weighted / computed) if computed else 0.0
    cong = led.congestion_summary()
    events = len(bus_sub.drain()) if bus_sub is not None else 0
    ctx = RunContext(
        scheme=key,
        N=int(scheme.N),
        M=int(scheme.M),
        n_prime=int(indices.size),
        copies=int(scheme.copies_per_variable),
        majority=int(scheme.read_quorum),
    )
    return RunMeasurement(
        ctx=ctx,
        quantities={
            "rounds": float(rounds),
            "phi": float(phi),
            "addr_field_ops": float(addr_field_ops),
            "congestion_p95": float(cong["p95"] or 0.0),
        },
        congestion={
            "p50": float(cong["p50"] or 0.0),
            "p95": float(cong["p95"] or 0.0),
            "max": float(cong["max"] or 0.0),
        },
        counters=dict(led.counters),
        gf_ops=led.gf.as_dict(),
        seconds=dict(led.seconds),
        total_seconds=led.total_seconds,
        batch_events=events,
    )


def _check_row(
    registry: BoundRegistry, meas: RunMeasurement
) -> CheckRow:
    bounds = {}
    for q in ENVELOPE_QUANTITIES:
        env = registry.envelope(meas.ctx.scheme, q)
        if env is not None:
            bounds[q] = env.bound(meas.ctx)
    return CheckRow(
        measurement=meas,
        bounds=bounds,
        violations=registry.check(meas.ctx, meas.quantities),
    )


def run_explain(
    *,
    quick: bool = False,
    slack: float = 1.25,
    coverage_min: float = 0.95,
    scheme_keys: tuple[str, ...] | None = None,
) -> ExplainResult:
    """Calibrate, check, attack, and attribute across the scheme suite.

    ``quick`` drops to a single calibration seed (CI's fast path);
    counts stay deterministic either way.  See the module docstring for
    the full procedure.
    """
    from repro.conformance.streaming import SCHEME_KEYS, scheme_by_key

    keys = scheme_keys or SCHEME_KEYS
    cal_seeds = _CAL_SEEDS[:1] if quick else _CAL_SEEDS

    registry = BoundRegistry()
    bus = EventBus()
    sub = bus.subscribe({"ledger.batch"})
    watch = HealthAggregator(MetricsRegistry())
    prev_bus = _obs.set_bus(bus)

    agg_seconds = {k: 0.0 for k in PHASE_KEYS}
    agg_total = 0.0
    bus_events = 0
    reports: list[SchemeReport] = []
    try:
        for key in keys:
            scheme = scheme_by_key(key)
            rep = SchemeReport(
                key=key,
                N=int(scheme.N),
                M=int(scheme.M),
                copies=int(scheme.copies_per_variable),
            )
            cal_sizes = _sweep_sizes(scheme.M, _CAL_FRACS)
            check_sizes = _sweep_sizes(scheme.M, _CHECK_FRACS)

            # warmup: numpy / lazy-layer first-call costs must not land
            # inside the attribution window (cold first runs lose ~50%
            # of their wall-clock to one-time setup)
            warm = scheme.random_request_set(max(cal_sizes), seed=7)
            store = scheme.make_store()
            vals = np.arange(1, warm.size + 1, dtype=np.int64)
            scheme.write(warm, vals, store, time=1, seed=7)
            scheme.read(warm, store, time=2, seed=8)

            calibration: dict[str, list[tuple[RunContext, float]]] = {
                q: [] for q in ENVELOPE_QUANTITIES
            }
            for seed in cal_seeds:
                for size in cal_sizes:
                    idx = scheme.random_request_set(size, seed=seed)
                    meas = _measure_run(scheme, key, idx, seed, sub)
                    rep.calibration.append(meas)
                    for q in ENVELOPE_QUANTITIES:
                        calibration[q].append((meas.ctx, meas.quantities[q]))
                    for k in PHASE_KEYS:
                        agg_seconds[k] += meas.seconds[k]
                    agg_total += meas.total_seconds
                    bus_events += meas.batch_events
            for q in ENVELOPE_QUANTITIES:
                rep.envelopes.append(
                    registry.fit(key, q, calibration[q], slack=slack)
                )

            for size in check_sizes:
                idx = scheme.random_request_set(size, seed=_CHECK_SEED)
                meas = _measure_run(scheme, key, idx, _CHECK_SEED, sub)
                rep.checks.append(_check_row(registry, meas))
                for k in PHASE_KEYS:
                    agg_seconds[k] += meas.seconds[k]
                agg_total += meas.total_seconds
                bus_events += meas.batch_events
            reports.append(rep)

        # seeded congestion attack: invert the single-copy placement so
        # every request lands on one module -- must bust the envelope.
        # (The PP neighbourhood attack is NOT used here: expansion
        # disperses it below the envelope, exactly as Theorems 4/5 say.)
        attack_scheme = scheme_by_key("single")
        attack_idx = attack_scheme.adversarial_request_set(16)
        attack_meas = _measure_run(
            attack_scheme, "single", attack_idx, _ATTACK_SEED, sub
        )
        attack = _check_row(registry, attack_meas)
        bus_events += attack_meas.batch_events
        for k in PHASE_KEYS:
            agg_seconds[k] += attack_meas.seconds[k]
        agg_total += attack_meas.total_seconds
    finally:
        _obs.set_bus(prev_bus)

    attack_flagged = any(
        v.quantity == "congestion_p95" for v in attack.violations
    )

    attributed = sum(agg_seconds.values())
    attribution = {
        "total_seconds": agg_total,
        "leaves": dict(agg_seconds),
        "attributed_seconds": attributed,
        "residual_seconds": max(0.0, agg_total - attributed),
        "coverage": (attributed / agg_total) if agg_total > 0 else 1.0,
    }

    # feed the drained events' aggregate through the watchdog consumer
    # path once, so the live-telemetry wiring is exercised end to end
    for rep in reports:
        for row in rep.checks:
            ev = dict(row.measurement.quantities)
            watch.consume(
                {
                    "name": "ledger.batch",
                    "rounds": int(ev["rounds"]),
                    "requests": row.measurement.ctx.n_prime,
                    "retries": row.measurement.counters.get(
                        "protocol.retries", 0
                    ),
                    "congestion_p95": ev["congestion_p95"],
                }
            )
    snap = watch.registry.histogram("watch.congestion_p95").snapshot()
    return ExplainResult(
        schemes=reports,
        attack=attack,
        attack_flagged=attack_flagged,
        attribution=attribution,
        coverage_min=coverage_min,
        slack=slack,
        bus_events=bus_events,
        watch_congestion_p95=snap.get("p95"),
    )


# ---------------------------------------------------------------------------
# rendering


def _fmt(x: float) -> str:
    if x == int(x) and abs(x) < 1e6:
        return str(int(x))
    return f"{x:.3g}"


def render_markdown(result: ExplainResult) -> str:
    """The committed ``explain_report.md`` body."""
    out: list[str] = []
    w = out.append
    w("# Cost attribution: theory vs measured")
    w("")
    w(
        "Envelopes `measured <= c * shape(N, N')` with theorem-fixed "
        f"shapes and constants fitted on a calibration sweep "
        f"(slack {result.slack:g}); check runs use a disjoint seed. "
        "Counts are deterministic; seconds are machine-local."
    )
    w("")

    for rep in result.schemes:
        w(
            f"## {rep.key} (N={rep.N}, M={rep.M}, r={rep.copies})"
        )
        w("")
        w("| N' | quantity | theorem | measured | envelope | verdict |")
        w("|---:|---|---|---:|---:|---|")
        for row in rep.checks:
            ctx = row.measurement.ctx
            bad = {v.quantity for v in row.violations}
            for env in rep.envelopes:
                q = env.quantity
                verdict = "**VIOLATED**" if q in bad else "within"
                w(
                    f"| {ctx.n_prime} | {q} | {env.theorem} "
                    f"| {_fmt(row.measurement.quantities[q])} "
                    f"| {_fmt(row.bounds.get(q, float('nan')))} "
                    f"| {verdict} |"
                )
        w("")

    w("## Congestion heat (per-step distribution, check runs)")
    w("")
    w("| scheme | N' | p50 | p95 | max |")
    w("|---|---:|---:|---:|---:|")
    for rep in result.schemes:
        for row in rep.checks:
            c = row.measurement.congestion
            w(
                f"| {rep.key} | {row.measurement.ctx.n_prime} "
                f"| {_fmt(c['p50'])} | {_fmt(c['p95'])} | {_fmt(c['max'])} |"
            )
    a = result.attack.measurement
    w(
        f"| {a.ctx.scheme} (attack) | {a.ctx.n_prime} | {_fmt(a.congestion['p50'])} "
        f"| {_fmt(a.congestion['p95'])} | {_fmt(a.congestion['max'])} |"
    )
    w("")

    w("## Seeded congestion attack (canary)")
    w("")
    if result.attack_flagged:
        v = next(
            v for v in result.attack.violations
            if v.quantity == "congestion_p95"
        )
        w(f"Flagged as expected: {v}")
    else:
        w(
            "**CANARY DEAD**: the module-neighbourhood attack stayed "
            "inside the congestion envelope -- envelopes too loose."
        )
    other = [
        str(v) for v in result.attack.violations
        if v.quantity != "congestion_p95"
    ]
    if other:
        w("")
        w("Collateral envelope hits under attack load:")
        for line in other:
            w(f"- {line}")
    w("")

    w("## Attribution tree (all measured runs pooled)")
    w("")
    att = result.attribution
    total = float(att["total_seconds"])  # type: ignore[arg-type]
    leaves: dict[str, float] = att["leaves"]  # type: ignore[assignment]
    w(f"- measured total: {total * 1e3:.1f} ms")
    for k in PHASE_KEYS:
        sec = leaves[k]
        pct = (sec / total * 100.0) if total > 0 else 0.0
        w(f"  - {k}: {sec * 1e3:.1f} ms ({pct:.1f}%)")
    cov = result.coverage
    w(
        f"- residual: {float(att['residual_seconds']) * 1e3:.1f} ms "  # type: ignore[arg-type]
        f"-> coverage {cov * 100:.1f}% "
        f"(floor {result.coverage_min * 100:.0f}%)"
    )
    w("")

    w("## Live telemetry")
    w("")
    w(
        f"- `ledger.batch` bus events observed: {result.bus_events}"
    )
    if result.watch_congestion_p95 is not None:
        w(
            "- watchdog aggregate `watch.congestion_p95` p95: "
            f"{result.watch_congestion_p95:.3g}"
        )
    w("")

    status = "PASS" if result.ok else "FAIL"
    nviol = len(result.check_violations)
    w("## Verdict")
    w("")
    w(
        f"**{status}** -- {nviol} check violation(s), attack "
        f"{'flagged' if result.attack_flagged else 'MISSED'}, "
        f"coverage {cov * 100:.1f}%."
    )
    w("")
    return "\n".join(out)


def write_report(result: ExplainResult, path: str = DEFAULT_REPORT_PATH) -> str:
    """Render and write the markdown report; returns the path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        fh.write(render_markdown(result))
    return path
