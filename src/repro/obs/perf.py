"""Benchmark telemetry and the cross-run performance trajectory.

:mod:`repro.obs` (PR 1) instruments a *single* process; this module
observes the repo *across runs*.  Every benchmark session (and the
``repro perf record`` quick suite) routes its timed sections through a
:class:`BenchRecorder`, which writes one machine-readable run record --
a ``BENCH_<utc-stamp>.json`` file at the repo root.  A
:class:`Trajectory` loads every such record (plus the per-experiment
metrics snapshots ``benchmarks/_util.save_tables`` persists), and a
:class:`RegressionDetector` compares the latest run against a rolling
MAD-based baseline so a hot-path slowdown fails CI instead of waiting
for someone to reread EXPERIMENTS.md.

### BENCH_*.json schema (version 1)

One JSON object per file:

| field | type | meaning |
|---|---|---|
| ``schema`` | int | record layout version (this is version ``1``) |
| ``kind`` | str | always ``"repro.bench"`` |
| ``created_utc`` | str | ISO-8601 UTC creation time, e.g. ``2026-08-05T12:34:56Z`` |
| ``env`` | object | environment fingerprint: ``git_sha``, ``python``, ``numpy``, ``platform``, ``cpus``, ``source`` |
| ``sections`` | object | timed sections, name -> summary (below) |
| ``scalars`` | object | headline scalars, name -> float (fitted exponents, Phi values, throughputs) |
| ``metrics`` | object | :meth:`repro.obs.metrics.MetricsRegistry.snapshot` taken at record time (may be empty) |

Each section summary: ``samples`` (raw seconds, monotonic clock),
``count``, ``median``, ``mad`` (median absolute deviation), ``best``,
``mean``, ``warmup``, ``repeats``.  Sections are *wall times* (lower is
better) and are what the regression gate checks; scalars are tracked on
the dashboard but not gated (their good direction is metric-specific).

### Regression rule

For each section of the latest record with a positive finite median,
the detector takes the medians of the same section over the previous
``window`` records, forms ``baseline = median(past)`` and
``mad = median(|past - baseline|)``, and flags a regression when::

    latest > baseline + max(ratio * baseline, mad_k * mad)

so one-off machine noise (absorbed by the MAD term) and sub-``ratio``
drift never flag, a first run or a section missing from the baseline is
skipped, an improvement is never flagged, and NaN / zero-time samples
are ignored.  ``repro perf check`` exits non-zero when any section
flags (``--soft`` reports without failing, for CI bootstrap).

### Surfacing

``repro perf record`` runs the quick suite and writes a record;
``repro perf report`` renders per-section trend tables with unicode
sparklines and writes ``benchmarks/results/perf_dashboard.md``;
``repro perf check`` is the CI gate; ``tools/bench_delta.py`` diffs two
records directly.  ``pytest benchmarks/`` records the full suite via
``benchmarks/conftest.py``.
"""

from __future__ import annotations

import glob
import json
import math
import os
import statistics
import subprocess
import sys
import time

from repro.obs.metrics import MetricsRegistry, _jsonable

__all__ = [
    "SCHEMA_VERSION",
    "RECORD_KIND",
    "BENCH_PREFIX",
    "BenchRecorder",
    "Trajectory",
    "Regression",
    "PerfCheck",
    "RegressionDetector",
    "env_fingerprint",
    "median_mad",
    "load_record",
    "trend",
    "render_report",
    "run_quick_suite",
]

#: Emit docs/API.md with this module's full docstring (it documents the
#: BENCH_*.json schema and the regression rule).
__apidoc__ = "full"

SCHEMA_VERSION = 1
RECORD_KIND = "repro.bench"
BENCH_PREFIX = "BENCH_"
_STAMP_FMT = "%Y%m%dT%H%M%SZ"


def _utc_stamp() -> str:
    """Compact UTC timestamp for BENCH file names (``20260805T123456Z``)."""
    return time.strftime(_STAMP_FMT, time.gmtime())


def _stamp_to_iso(stamp: str) -> str:
    """``20260805T123456Z`` -> ``2026-08-05T12:34:56Z``."""
    t = time.strptime(stamp, _STAMP_FMT)
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", t)


def env_fingerprint(source: str = "") -> dict:
    """Where and on what a record was taken: git SHA, python/numpy
    versions, platform, CPU count, and the recording ``source``."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "git_sha": sha,
        "python": sys.version.split()[0],
        "numpy": numpy_version,
        "platform": sys.platform,
        "cpus": os.cpu_count(),
        "source": source,
    }


def median_mad(values) -> tuple[float, float]:
    """``(median, median-absolute-deviation)`` of a non-empty series."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("median_mad of an empty series")
    med = statistics.median(vals)
    mad = statistics.median(abs(v - med) for v in vals)
    return float(med), float(mad)


def _finite_positive(v) -> bool:
    return isinstance(v, (int, float)) and math.isfinite(v) and v > 0


class BenchRecorder:
    """Collects one run's timed sections and headline scalars into a
    ``BENCH_*.json`` record.

    Timing uses the monotonic ``time.perf_counter`` clock with
    warmup-then-repeat-k sampling; summaries carry median/MAD/best so
    the trajectory can form noise-aware baselines.
    """

    def __init__(self, source: str = ""):
        self.env = env_fingerprint(source)
        self._samples: dict[str, list[float]] = {}
        self._meta: dict[str, dict] = {}
        self._scalars: dict[str, float] = {}
        self._metrics: dict = {}

    @property
    def empty(self) -> bool:
        """True iff nothing has been recorded yet."""
        return not (self._samples or self._scalars)

    def measure(self, name: str, fn, warmup: int = 1, repeats: int = 5) -> dict:
        """Time ``fn()`` under the recorder: ``warmup`` unrecorded calls,
        then ``repeats`` recorded ones; returns the section summary."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        for _ in range(warmup):
            fn()
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            self.observe(name, time.perf_counter() - t0)
        self._meta[name] = {"warmup": warmup, "repeats": repeats}
        return self.summary(name)

    def observe(self, name: str, seconds: float) -> None:
        """Fold one externally timed sample (seconds) into a section."""
        self._samples.setdefault(name, []).append(float(seconds))

    def scalar(self, name: str, value) -> None:
        """Record a headline scalar (fitted exponent, Phi, throughput)."""
        self._scalars[name] = float(value)

    def attach_metrics(self, metrics: MetricsRegistry | dict) -> None:
        """Attach a :mod:`repro.obs` metrics snapshot to the record."""
        self._metrics = (
            metrics.snapshot() if isinstance(metrics, MetricsRegistry)
            else dict(metrics)
        )

    def summary(self, name: str) -> dict:
        """Median/MAD/best/mean summary of one section's samples."""
        samples = self._samples[name]
        med, mad = median_mad(samples)
        meta = self._meta.get(name, {"warmup": 0, "repeats": len(samples)})
        return {
            "samples": list(samples),
            "count": len(samples),
            "median": med,
            "mad": mad,
            "best": min(samples),
            "mean": sum(samples) / len(samples),
            **meta,
        }

    def record(self, stamp: str | None = None) -> dict:
        """The full schema-1 run record as a plain dict."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": RECORD_KIND,
            "created_utc": _stamp_to_iso(stamp or _utc_stamp()),
            "env": self.env,
            "sections": {n: self.summary(n) for n in sorted(self._samples)},
            "scalars": dict(sorted(self._scalars.items())),
            "metrics": self._metrics,
        }

    def write(self, directory: str = ".", stamp: str | None = None) -> str:
        """Write ``BENCH_<stamp>.json`` into ``directory`` (a fresh name
        is picked on a same-second collision); returns the path."""
        stamp = stamp or _utc_stamp()
        rec = self.record(stamp)
        path = os.path.join(directory, f"{BENCH_PREFIX}{stamp}.json")
        k = 2
        while os.path.exists(path):
            path = os.path.join(directory, f"{BENCH_PREFIX}{stamp}_{k}.json")
            k += 1
        with open(path, "w") as fh:
            json.dump(rec, fh, indent=2, default=_jsonable)
            fh.write("\n")
        return path


def load_record(path: str) -> dict:
    """Load and validate one ``BENCH_*.json`` record."""
    with open(path) as fh:
        rec = json.load(fh)
    if not isinstance(rec, dict) or rec.get("kind") != RECORD_KIND:
        raise ValueError(f"{path}: not a {RECORD_KIND} record")
    if rec.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {rec.get('schema')!r}, expected {SCHEMA_VERSION}"
        )
    return rec


class Trajectory:
    """The repo's recorded performance history: every ``BENCH_*.json``
    in creation order, plus the experiments' metrics snapshots."""

    def __init__(self, records: list[dict], paths: list[str] | None = None,
                 metrics_snapshots: dict[str, dict] | None = None,
                 skipped: list[str] | None = None):
        order = sorted(
            range(len(records)),
            key=lambda i: (records[i].get("created_utc", ""),
                           (paths or [""] * len(records))[i]),
        )
        self.records = [records[i] for i in order]
        self.paths = [(paths or [""] * len(records))[i] for i in order]
        self.metrics_snapshots = metrics_snapshots or {}
        self.skipped = skipped or []

    @classmethod
    def load(cls, directory: str = ".",
             results_dir: str | None = None) -> "Trajectory":
        """Load all ``BENCH_*.json`` under ``directory``; when
        ``results_dir`` is given, also fold in the schema-checked
        ``*.metrics.json`` snapshots ``save_tables`` persists there
        (unreadable files are listed in ``.skipped``, not fatal)."""
        records, paths, skipped = [], [], []
        for p in sorted(glob.glob(os.path.join(directory,
                                               f"{BENCH_PREFIX}*.json"))):
            try:
                records.append(load_record(p))
                paths.append(p)
            except (ValueError, OSError, json.JSONDecodeError):
                skipped.append(p)
        snapshots = {}
        if results_dir:
            for p in sorted(glob.glob(os.path.join(results_dir,
                                                   "*.metrics.json"))):
                try:
                    with open(p) as fh:
                        payload = json.load(fh)
                    if (isinstance(payload, dict)
                            and payload.get("schema") == 1
                            and isinstance(payload.get("metrics"), dict)):
                        name = payload.get(
                            "name",
                            os.path.basename(p)[: -len(".metrics.json")],
                        )
                        snapshots[name] = payload["metrics"]
                    else:
                        skipped.append(p)
                except (OSError, json.JSONDecodeError):
                    skipped.append(p)
        return cls(records, paths, snapshots, skipped)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def latest(self) -> dict | None:
        """The most recent record, or None when the store is empty."""
        return self.records[-1] if self.records else None

    def section_names(self) -> list[str]:
        """Union of timed-section names across all records, sorted."""
        names: set[str] = set()
        for r in self.records:
            names.update(r.get("sections", {}))
        return sorted(names)

    def scalar_names(self) -> list[str]:
        """Union of headline-scalar names across all records, sorted."""
        names: set[str] = set()
        for r in self.records:
            names.update(r.get("scalars", {}))
        return sorted(names)

    def series(self, name: str) -> list[float | None]:
        """Per-record section medians, aligned to :attr:`records`
        (None where a record lacks the section)."""
        out: list[float | None] = []
        for r in self.records:
            s = r.get("sections", {}).get(name)
            out.append(s.get("median") if s else None)
        return out

    def scalar_series(self, name: str) -> list[float | None]:
        """Per-record scalar values, aligned to :attr:`records`."""
        return [r.get("scalars", {}).get(name) for r in self.records]

    def baseline(self, name: str, window: int = 5):
        """``(median, mad, count)`` of the section's medians over the
        last ``window`` records *excluding* the latest, or None when no
        usable history exists (first run / new section)."""
        past = [
            v for v in self.series(name)[:-1][-window:] if _finite_positive(v)
        ]
        if not past:
            return None
        med, mad = median_mad(past)
        return med, mad, len(past)


class Regression:
    """One flagged section: the latest median against its baseline."""

    __slots__ = ("name", "latest", "baseline", "mad", "ratio")

    def __init__(self, name: str, latest: float, baseline: float, mad: float):
        self.name = name
        self.latest = latest
        self.baseline = baseline
        self.mad = mad
        self.ratio = latest / baseline

    def __repr__(self) -> str:
        return (f"Regression({self.name}: {self.latest:.4g}s vs "
                f"baseline {self.baseline:.4g}s, x{self.ratio:.2f})")


class PerfCheck:
    """Outcome of one regression pass: what was checked, what flagged,
    and which sections had no baseline yet."""

    __slots__ = ("regressions", "checked", "new_sections", "baseline_runs")

    def __init__(self, regressions: list[Regression], checked: int,
                 new_sections: list[str], baseline_runs: int):
        self.regressions = regressions
        self.checked = checked
        self.new_sections = new_sections
        self.baseline_runs = baseline_runs

    @property
    def ok(self) -> bool:
        """True iff no section regressed."""
        return not self.regressions


class RegressionDetector:
    """Flags sections of the latest record that got slower than the
    rolling baseline allows (see the module docstring for the rule)."""

    def __init__(self, trajectory: Trajectory, window: int = 5,
                 ratio: float = 0.25, mad_k: float = 4.0):
        if window < 1 or ratio < 0 or mad_k < 0:
            raise ValueError("window >= 1, ratio >= 0, mad_k >= 0 required")
        self.trajectory = trajectory
        self.window = window
        self.ratio = ratio
        self.mad_k = mad_k

    def check(self) -> PerfCheck:
        """Compare the latest record's sections against their baselines."""
        records = self.trajectory.records
        if len(records) < 2:
            return PerfCheck([], 0, [], max(0, len(records) - 1))
        latest = records[-1]
        flags: list[Regression] = []
        new: list[str] = []
        checked = 0
        for name, summary in sorted(latest.get("sections", {}).items()):
            value = summary.get("median")
            if not _finite_positive(value):
                continue  # NaN / zero-time guard
            base = self.trajectory.baseline(name, self.window)
            if base is None:
                new.append(name)
                continue
            med, mad, _n = base
            checked += 1
            if value > med + max(self.ratio * med, self.mad_k * mad):
                flags.append(Regression(name, value, med, mad))
        return PerfCheck(flags, checked, new, min(len(records) - 1, self.window))


def trend(values) -> str:
    """Unicode sparkline of a series that may contain gaps (None) --
    gaps are dropped, non-finite values too."""
    from repro.analysis.report import sparkline

    return sparkline(
        [v for v in values
         if isinstance(v, (int, float)) and math.isfinite(v)]
    )


def _pct(latest: float, base: float) -> str:
    return f"{100.0 * (latest - base) / base:+.1f}%"


def render_report(trajectory: Trajectory, window: int = 5) -> str:
    """The markdown performance dashboard: run inventory, per-section
    trend tables with sparklines, scalar trends, and the experiment
    metrics snapshots folded into the trajectory."""
    from repro.analysis.report import Table

    lines = [
        "# Performance trajectory",
        "",
        "*Generated by `repro perf report` -- do not edit by hand.*",
        "",
    ]
    if not trajectory.records:
        lines.append("No `BENCH_*.json` records found -- run "
                     "`repro perf record` or `pytest benchmarks/` first.")
        return "\n".join(lines) + "\n"

    latest = trajectory.latest
    env = latest.get("env", {})
    lines += [
        f"- runs: **{len(trajectory)}** "
        f"({trajectory.records[0].get('created_utc')} -> "
        f"{latest.get('created_utc')})",
        f"- latest env: git `{(env.get('git_sha') or 'unknown')[:12]}`, "
        f"python {env.get('python')}, numpy {env.get('numpy')}, "
        f"{env.get('cpus')} cpus, source `{env.get('source') or '-'}`",
        f"- baseline window: last {window} runs, MAD-thresholded "
        f"(see `repro perf check`)",
        "",
    ]

    t = Table(
        ["section", "runs", "best", "latest median", "baseline",
         "delta", "trend"],
        title="Timed sections (seconds; lower is better)",
    )
    for name in trajectory.section_names():
        series = trajectory.series(name)
        present = [v for v in series if _finite_positive(v)]
        latest_v = series[-1]
        base = trajectory.baseline(name, window)
        t.add_row([
            name,
            len(present),
            round(min(present), 6) if present else None,
            round(latest_v, 6) if latest_v is not None else None,
            round(base[0], 6) if base else None,
            _pct(latest_v, base[0])
            if base and _finite_positive(latest_v) else "-",
            trend(series),
        ])
    lines += [t.render(), ""]

    scalar_names = trajectory.scalar_names()
    if scalar_names:
        t2 = Table(
            ["scalar", "latest", "trend"],
            title="Headline scalars (tracked, not gated)",
        )
        for name in scalar_names:
            series = trajectory.scalar_series(name)
            t2.add_row([name, series[-1], trend(series)])
        lines += [t2.render(), ""]

    if trajectory.metrics_snapshots:
        t3 = Table(
            ["experiment snapshot", "metrics", "total timer seconds"],
            title="Per-experiment obs snapshots (benchmarks/results/)",
        )
        for name in sorted(trajectory.metrics_snapshots):
            snap = trajectory.metrics_snapshots[name]
            total = sum(
                m.get("total_seconds", 0.0) for m in snap.values()
                if isinstance(m, dict) and m.get("type") == "timer"
            )
            t3.add_row([name, len(snap), round(total, 4)])
        lines += [t3.render(), ""]
    return "\n".join(lines) + "\n"


def run_quick_suite(
    recorder: BenchRecorder, repeats: int = 3, engine: str = "vector"
) -> None:
    """The CI quick suite: an E6-style protocol sweep plus the kernel
    microbenchmarks at small sizes -- a few seconds of wall time that
    still covers every hot path the full benchmarks exercise.

    ``engine`` selects the protocol executor for the protocol sections
    (:mod:`repro.core.engine`): ``'vector'`` (default, the gated
    sections), ``'scalar'`` (oracle sections, suffixed ``_scalar`` so
    they trend separately), or ``'both'``, which also records the
    ``quick.engine_speedup_n5`` scalar (scalar / vector median).  The
    scalar engine only runs the small instances -- it exists to be
    differentially tested against, not to be raced at full load.
    """
    import numpy as np

    from repro.core.scheme import PPScheme
    from repro.gf.gf2m import GF2m
    from repro.mpc.arbitration import LowestIdArbiter

    if engine not in ("vector", "scalar", "both"):
        raise ValueError(
            f"engine must be 'vector', 'scalar' or 'both', got {engine!r}"
        )
    engines = ("vector", "scalar") if engine == "both" else (engine,)

    recorder.measure(
        "quick.scheme_build_n7", lambda: PPScheme(2, 7), repeats=repeats
    )

    # E6-style sweep: full load across n, partial loads on n=7
    medians: dict[tuple[str, int], float] = {}
    for n in (3, 5, 7):
        s = PPScheme(2, n)
        idx = s.random_request_set(min(s.N, s.M), seed=0)
        for eng in engines:
            if eng == "scalar" and n >= 7:
                continue  # pure-python loop; full n>=7 load is minutes
            suffix = "" if eng == "vector" else "_scalar"
            summ = recorder.measure(
                f"quick.protocol_full_n{n}{suffix}",
                lambda s=s, idx=idx, eng=eng: s.access(
                    idx, op="count", engine=eng
                ),
                repeats=repeats,
            )
            medians[(eng, n)] = summ["median"]
        res = s.access(idx, op="count")
        recorder.scalar(f"quick.phi_full_n{n}", res.max_phase_iterations)
        recorder.scalar(f"quick.iters_full_n{n}", res.total_iterations)
    if ("vector", 5) in medians and ("scalar", 5) in medians:
        recorder.scalar(
            "quick.engine_speedup_n5",
            medians[("scalar", 5)] / medians[("vector", 5)],
        )
    s7 = PPScheme(2, 7)
    for n_prime in (256, 4096):
        idx = s7.random_request_set(n_prime, seed=1)
        for eng in engines:
            if eng == "scalar" and n_prime > 256:
                continue
            suffix = "" if eng == "vector" else "_scalar"
            recorder.measure(
                f"quick.protocol_n7_{n_prime}{suffix}",
                lambda idx=idx, eng=eng: s7.access(
                    idx, op="count", engine=eng
                ),
                repeats=repeats,
            )

    # kernel microbenchmarks, small sizes
    rng = np.random.default_rng(0)
    F = GF2m.get(18)
    a = rng.integers(0, F.order, 100_000)
    b = rng.integers(0, F.order, 100_000)
    nz = rng.integers(1, F.order, 100_000)
    s = recorder.measure("quick.gf_vmul_100k", lambda: F.vmul(a, b),
                         repeats=repeats)
    recorder.scalar("quick.gf_vmul_mops", 0.1 / s["median"])
    recorder.measure("quick.gf_vinv_100k", lambda: F.vinv(nz),
                     repeats=repeats)
    mods = rng.integers(0, s7.N, 100_000)
    arb = LowestIdArbiter()
    recorder.measure("quick.arbitration_100k", lambda: arb(mods),
                     repeats=repeats)
    idx_full = s7.random_request_set(s7.N, seed=2)
    recorder.measure(
        "quick.vunrank_n7_full",
        lambda: s7.addressing.vunrank(idx_full),
        repeats=repeats,
    )
    mats = s7.addressing.vunrank(idx_full)
    recorder.measure(
        "quick.vgamma_n7_full",
        lambda: s7.graph.vgamma_variables(mats),
        repeats=repeats,
    )

    # service closed loop: tail latency + round throughput of the
    # sharded front end, live watchdog attached (vector engine only --
    # the scalar oracle is differential-test equipment, not a servable
    # configuration)
    if "vector" in engines:
        from repro.service.batcher import ServiceConfig
        from repro.service.loadgen import LoadConfig, run_load

        svc = ServiceConfig(
            n_shards=2, round_capacity=512, max_pending=2048, seed=0
        )
        load = LoadConfig(
            clients=1500, ops_per_client=2, keyspace=512, mix="zipf", seed=0
        )
        best_rps = 0.0
        for _ in range(repeats):
            rep = run_load(load, svc)
            recorder.observe("quick.service_latency_p50", rep.latency["p50"])
            recorder.observe("quick.service_latency_p95", rep.latency["p95"])
            recorder.observe("quick.service_latency_p99", rep.latency["p99"])
            recorder.observe("quick.service_run", rep.elapsed)
            best_rps = max(best_rps, rep.rounds_per_sec)
        recorder.scalar("quick.service_rounds_per_sec", best_rps)
