"""Span-based tracing with a zero-overhead no-op default.

Two backends share one interface:

* :class:`NullTracer` -- the default.  Its :meth:`~NullTracer.span`
  returns a shared no-op context manager and :meth:`~NullTracer.event`
  does nothing, so instrumentation left in hot paths costs one branch.
* :class:`RecordingTracer` -- accumulates structured events in memory
  and serializes them as JSON Lines (one event object per line).

Every record carries ``type`` (``"span"`` or ``"event"``), ``name``,
``seq`` (monotonic per tracer), and ``ts`` (seconds since the tracer was
created); span records add ``dur`` (seconds) plus any fields attached at
open time or via :meth:`Span.add`.  Records are emitted when a span
*closes*, so a nested span appears before its parent -- consumers that
need the tree re-nest by ``ts``/``dur`` (see ``tools/trace_report.py``).

Usage::

    from repro import obs

    tracer = obs.RecordingTracer()
    obs.set_tracer(tracer)
    ...  # instrumented code runs
    obs.set_tracer(None)
    tracer.write_jsonl("trace.jsonl")

or wrap a function with the :func:`traced` decorator, which is free when
no recording tracer is installed.
"""

from __future__ import annotations

import functools
import io
import json
import time

__all__ = [
    "Span",
    "NullTracer",
    "RecordingTracer",
    "traced",
    "read_jsonl",
]


class _NullSpan:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def add(self, **fields) -> None:
        """No-op."""


#: The singleton no-op span every :class:`NullTracer` hands out.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    ``enabled`` is a class attribute so the hot-path guard
    ``tracer.enabled`` is a plain attribute load.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, **fields) -> _NullSpan:
        """Return the shared no-op span."""
        return NULL_SPAN

    def event(self, name: str, **fields) -> None:
        """Drop the event."""


class Span:
    """An open span of a :class:`RecordingTracer`; use as a context
    manager.  Fields attached via :meth:`add` while open are included in
    the record emitted at close."""

    __slots__ = ("_tracer", "name", "fields", "_t0")

    def __init__(self, tracer: "RecordingTracer", name: str, fields: dict):
        self._tracer = tracer
        self.name = name
        self.fields = fields
        self._t0 = tracer._now()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._tracer._emit(
            "span", self.name, self._t0, dur=self._tracer._now() - self._t0,
            **self.fields,
        )
        return False

    def add(self, **fields) -> None:
        """Attach extra fields to the record this span will emit."""
        self.fields.update(fields)


class RecordingTracer:
    """Tracer that records structured events for later export.

    Parameters
    ----------
    clock:
        Monotonic time source (seconds); injectable for tests.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._seq = 0
        self.events: list[dict] = []

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _emit(self, rtype: str, name: str, ts: float, **fields) -> None:
        self._seq += 1
        rec = {"type": rtype, "name": name, "seq": self._seq, "ts": ts}
        rec.update(fields)
        self.events.append(rec)

    def span(self, name: str, **fields) -> Span:
        """Open a span; the record is emitted when the span closes."""
        return Span(self, name, fields)

    def event(self, name: str, **fields) -> None:
        """Record one instantaneous event."""
        self._emit("event", name, self._now(), **fields)

    # -- export --------------------------------------------------------

    def to_jsonl(self) -> str:
        """All events as JSON Lines (chronological emit order)."""
        buf = io.StringIO()
        for rec in self.events:
            buf.write(json.dumps(rec, default=_jsonable))
            buf.write("\n")
        return buf.getvalue()

    def write_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the event count."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
        return len(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"RecordingTracer({len(self.events)} events)"


def read_jsonl(path: str) -> list[dict]:
    """Parse a JSONL trace file back into event dicts (blank-line safe)."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def traced(name: str | None = None):
    """Decorator: run the function inside a span named ``name`` (default
    the function's qualified name).  When no recording tracer is
    installed the wrapper adds one branch and calls straight through."""

    def deco(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from repro import obs

            tracer = obs.tracer()
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return deco


def _jsonable(x):
    """Fallback encoder: numpy scalars/arrays and other sequence-likes."""
    if hasattr(x, "item") and not hasattr(x, "__len__"):
        return x.item()
    if hasattr(x, "tolist"):
        return x.tolist()
    raise TypeError(f"not JSON serializable: {type(x).__name__}")
