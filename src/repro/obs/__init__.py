"""Unified observability: metrics, tracing, and profiling for the stack.

Everything the paper's bounds are about is a counted quantity --
iterations, congestion, served copies, address-computation cost.  This
package gives those counts one export path.  It is **off by default**
and instrumented hot paths are guarded by a single cheap
:func:`enabled` check, so a run with observability disabled pays
(measurably, see ``tests/obs/test_overhead.py``) under 5% overhead --
in practice well under 1%.

### Switchboard

- :func:`enable_metrics` / :func:`disable_metrics` -- toggle collection
  into the process-global :class:`~repro.obs.metrics.MetricsRegistry`
  (reachable via :func:`metrics`).
- :func:`set_tracer` -- install a
  :class:`~repro.obs.trace.RecordingTracer` (or ``None`` to restore the
  zero-overhead :class:`~repro.obs.trace.NullTracer`).
- :func:`set_bus` -- install a :class:`~repro.obs.stream.EventBus` (or
  ``None`` to remove it) for live streaming consumers; see
  :mod:`repro.obs.stream` for the bounded-queue backpressure contract.
- :func:`set_ledger` -- install a
  :class:`~repro.obs.ledger.Ledger` (or ``None`` to remove it) for
  bound-quantity accounting: protocol rounds, congestion
  distributions, field-op counts, and the phase-attribution tree.
  Installing also routes the :mod:`repro.gf.opcount` sink into
  :mod:`repro.gf.gf2m`; :func:`ledger` returns the installed one.
- :func:`publish` -- forward one named event to the tracer (if
  recording) and the bus (if installed); callers must check
  :func:`enabled` first, like every other emission site.
- :func:`enabled` -- True iff metrics, tracing, a bus, or a ledger is
  active; the guard every instrumentation site checks first.
- :func:`collect` -- context manager that enables both for a block and
  restores the previous state.

### Metric names

| name | kind | meaning |
|---|---|---|
| ``scheme.builds`` | counter | :class:`~repro.core.scheme.PPScheme` constructions |
| ``scheme.build_seconds`` | timer | wall time of scheme construction |
| ``address.placement_calls`` | counter | vectorized address computations (unrank + Lemma 1/4) |
| ``address.placement_seconds`` | timer | wall time of those computations |
| ``address.vunrank_seconds`` | timer | wall time inside the vectorized Section-4 unranking |
| ``address.unranks`` | counter | scalar O(log N) unrank calls |
| ``protocol.accesses{op=...}`` | counter | protocol batches run, labeled by op |
| ``protocol.access_seconds{op=...}`` | timer | wall time per batch, labeled by op |
| ``protocol.iterations`` | counter | total protocol iterations across batches |
| ``protocol.phase_iterations`` | histogram | per-phase iteration distribution |
| ``mpc.steps`` / ``mpc.requests`` / ``mpc.served`` | counter | machine step/request/serve totals |
| ``mpc.max_congestion`` | gauge | high-watermark of same-step module congestion |
| ``kvstore.ops{op=...}`` | counter | kvstore batch operations (put/get/delete) |
| ``kvstore.probe_rounds`` | counter | hash-probe protocol rounds |
| ``protocol.lost_variables`` | counter | variables that lost their majority quorum (degraded mode) |
| ``faults.scenarios{model=...}`` | counter | campaign scenario runs, labeled by fault model |
| ``faults.lost`` | counter | quorum losses observed across campaign scenarios |
| ``faults.violations`` | counter | semantic violations below the q/2 threshold (should stay 0) |
| ``watch.batches`` / ``watch.requests`` | counter | protocol batches / requests seen by the live watchdog |
| ``watch.lost`` / ``watch.degraded`` | counter | lost / degraded variables reported in health events |
| ``watch.round`` | gauge | latest logical round observed by the watchdog |
| ``watch.quorum_margin`` | gauge | live copies beyond the majority for the worst variable class |
| ``watch.load_skew`` | histogram | per-batch max-congestion skew vs a balanced load (x100) |
| ``watch.iterations`` | histogram | per-batch protocol iteration totals |
| ``watch.checker_lag`` | gauge | rounds buffered but not yet retired by the streaming checker |
| ``watch.state_size`` | gauge | high-watermark of the streaming checker's retained state |
| ``watch.events_dropped`` | gauge | bus events dropped at the watchdog's bounded queue |
| ``watch.violations`` | counter | consistency violations flagged online |

Histogram and timer snapshots also carry ``p50``/``p95``/``p99``
(nearest-rank over a bounded deterministic sketch; ``*_seconds`` for
timers).

### Trace event schema

JSONL, one object per line; every record has ``type`` ("span"/"event"),
``name``, ``seq``, ``ts`` (seconds since tracer start); spans add
``dur``.  Spans are emitted at close, so children precede parents.

| name | type | fields |
|---|---|---|
| ``scheme.build`` | span | ``q, n, N, M, addressing`` |
| ``address.placement`` | span | ``count, slots`` (slots: bool -- Lemma-4 slots computed too) |
| ``address.vunrank`` | span | ``count`` |
| ``protocol.access`` | span | ``op, requests, q, phases, total_iterations`` |
| ``protocol.phase`` | span | ``phase, variables, iterations, live_history`` (the R_k trajectory) |
| ``mpc.step`` | event | ``requests, served, congestion`` |
| ``kvstore.op`` | event | ``op, keys`` |
| ``kvstore.probe`` | span | ``batch, rounds`` |
| ``kvstore.probe_round`` | event | ``round, pending`` |
| ``faults.campaign`` | span | ``qs, models, violations`` |
| ``faults.threshold`` | span | ``q`` (one adversarial ladder) |
| ``faults.scenario`` | span | ``q, model, intensity`` |
| ``mem.op`` | event | ``op, var, value, round, proc, phase, lost`` (one per request; consumed by :mod:`repro.conformance`) |
| ``kv.op`` | event | ``op, key, value, round`` (one per key of a kvstore batch) |

``mem.op`` / ``kv.op`` also go to the installed event bus (same
fields, bus-assigned ``seq``).  Two events are **bus-only** -- they feed
the live watchdog without perturbing recorded traces:

| name | fields |
|---|---|
| ``protocol.health`` | ``op, round, requests, copies, majority, modules, iterations, served, max_congestion, load_skew, lost, degraded, quorum_margin`` (one per read/write batch) |
| ``scheme.topology`` | ``q, n, N, M, copies, majority`` (one per scheme build) |
| ``ledger.batch`` | ``op, requests, copies, majority, modules, rounds, phi, retries, congestion_p50, congestion_p95, congestion_max`` (one per batch while a ledger is installed) |

### Overhead guarantees

With observability disabled every instrumentation site reduces to one
``enabled()`` call returning False (hot loops hoist even that out);
``tests/obs/test_overhead.py`` measures the per-guard cost, counts the
sites exercised by a full-load (q=2, n=7) batch, and asserts the total
is below 5% of the batch's wall time.  With a tracer installed, the
emitted per-phase iteration counts equal ``AccessResult`` exactly
(round-trip test in ``tests/obs/test_trace.py``).

### Surfacing

``python -m repro access --trace-out FILE`` records a JSONL trace;
``python -m repro metrics`` prints a JSON snapshot after a batch;
``python -m repro profile`` runs the cProfile harness
(:mod:`repro.obs.profiling`); ``tools/trace_report.py`` renders a trace
as the per-phase table of EXPERIMENTS.md E06; ``python -m repro
explain`` (:mod:`repro.obs.explain`) runs the six-scheme E6-style suite
under a :class:`~repro.obs.ledger.Ledger`, checks every measured count
against the fitted theorem envelopes of
:class:`repro.core.bounds.BoundRegistry`, and renders the
theory-vs-measured and congestion tables into
``benchmarks/results/explain_report.md``.

Cross-run performance lives one layer up: :mod:`repro.obs.perf` folds
each benchmark session's timings (and a metrics snapshot) into a
``BENCH_*.json`` run record and gates regressions via ``python -m repro
perf record|report|check``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.ledger import Ledger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.stream import EventBus, Subscription
from repro.obs.trace import (
    NULL_SPAN,
    NullTracer,
    RecordingTracer,
    read_jsonl,
    traced,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullTracer",
    "RecordingTracer",
    "EventBus",
    "Subscription",
    "Ledger",
    "traced",
    "read_jsonl",
    "metrics",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "tracer",
    "set_tracer",
    "bus",
    "set_bus",
    "ledger",
    "set_ledger",
    "publish",
    "enabled",
    "collect",
    "span",
    "on_mpc_step",
]

#: Emit docs/API.md with this module's full docstring (it is the
#: observability reference), not just the first paragraph.
__apidoc__ = "full"

_NULL_TRACER = NullTracer()
_REGISTRY = MetricsRegistry()
_metrics_on = False
_tracer = _NULL_TRACER
_bus: EventBus | None = None
_ledger: Ledger | None = None
_active = False  # metrics/tracing/bus/ledger; the one flag hot guards read


def metrics() -> MetricsRegistry:
    """The process-global metrics registry (exists even while disabled)."""
    return _REGISTRY


def metrics_enabled() -> bool:
    """True iff instrumented code is recording into :func:`metrics`."""
    return _metrics_on


def enable_metrics() -> MetricsRegistry:
    """Turn metrics collection on; returns the global registry."""
    global _metrics_on, _active
    _metrics_on = True
    _active = True
    return _REGISTRY


def disable_metrics() -> None:
    """Turn metrics collection off (the registry keeps its contents)."""
    global _metrics_on, _active
    _metrics_on = False
    _active = _tracer.enabled or _bus is not None or _ledger is not None


def tracer() -> NullTracer | RecordingTracer:
    """The currently installed tracer (the no-op one by default)."""
    return _tracer


def set_tracer(t: RecordingTracer | None) -> NullTracer | RecordingTracer:
    """Install a tracer (``None`` restores the no-op default); returns
    the previously installed one so callers can restore it."""
    global _tracer, _active
    prev = _tracer
    _tracer = _NULL_TRACER if t is None else t
    _active = (
        _metrics_on or _tracer.enabled or _bus is not None
        or _ledger is not None
    )
    return prev


def bus() -> EventBus | None:
    """The installed event bus, or None (the zero-cost default)."""
    return _bus


def set_bus(b: EventBus | None) -> EventBus | None:
    """Install an event bus (``None`` removes it); returns the previous
    one so callers can restore it."""
    global _bus, _active
    prev = _bus
    _bus = b
    _active = (
        _metrics_on or _tracer.enabled or _bus is not None
        or _ledger is not None
    )
    return prev


def ledger() -> Ledger | None:
    """The installed bound-accounting ledger, or None (the default)."""
    return _ledger


def set_ledger(led: Ledger | None) -> Ledger | None:
    """Install a :class:`~repro.obs.ledger.Ledger` (``None`` removes it);
    returns the previous one so callers can restore it.

    Installing wires the GF(2^m) op sink into :mod:`repro.gf.gf2m` and
    flips :func:`enabled`; removing restores the prior sink, so the
    disabled path goes back to one guard per site."""
    global _ledger, _active
    prev = _ledger
    if prev is not None and prev is not led:
        prev.on_uninstall()
    if led is not None and led is not prev:
        led.on_install()
    _ledger = led
    _active = (
        _metrics_on or _tracer.enabled or _bus is not None
        or _ledger is not None
    )
    return prev


def publish(name: str, **fields: object) -> None:
    """Emit one named event to the tracer (if recording) and the bus
    (if installed).  Callers must check :func:`enabled` first -- this is
    the streaming sibling of :func:`on_mpc_step`."""
    if _tracer.enabled:
        _tracer.event(name, **fields)
    if _bus is not None:
        _bus.publish(name, fields)


def enabled() -> bool:
    """The hot-path guard: is any observability backend active?"""
    return _active


@contextmanager
def collect(trace: bool = True):
    """Enable metrics (and, by default, a fresh recording tracer) for a
    block; yields ``(registry, tracer_or_None)`` and restores the
    previous switchboard state on exit."""
    was_on = _metrics_on
    enable_metrics()
    t = RecordingTracer() if trace else None
    prev = set_tracer(t) if trace else None
    try:
        yield _REGISTRY, t
    finally:
        if trace:
            set_tracer(prev if prev is not _NULL_TRACER else None)
        if not was_on:
            disable_metrics()


@contextmanager
def span(name: str, timer: str | None = None, **fields):
    """Instrumentation-site helper: a trace span plus an optional metric
    timer, collapsing to a bare yield when observability is off."""
    if not _active:
        yield NULL_SPAN
        return
    t0 = time.perf_counter() if (_metrics_on and timer) else None
    with _tracer.span(name, **fields) as sp:
        yield sp
    if t0 is not None:
        _REGISTRY.timer(timer).observe(time.perf_counter() - t0)


def on_mpc_step(requests: int, served: int, congestion: int) -> None:
    """Hook for :meth:`repro.mpc.machine.MPC.step`; callers must check
    :func:`enabled` first."""
    if _metrics_on:
        _REGISTRY.counter("mpc.steps").inc()
        _REGISTRY.counter("mpc.requests").inc(requests)
        _REGISTRY.counter("mpc.served").inc(served)
        _REGISTRY.gauge("mpc.max_congestion").update_max(congestion)
    _tracer.event(
        "mpc.step", requests=requests, served=served, congestion=congestion
    )
