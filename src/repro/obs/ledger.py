"""Bound-accounting ledger: theory-vs-measured cost attribution.

The paper's claims are *counted* quantities -- ``O((N')^{1/3} log* N' +
log N)`` protocol rounds (Theorem 1), ``O(log N)`` field operations per
on-the-fly address (Theorem 8), at most one access per module per round
-- but wall-clock measurements alone cannot say whether a run stayed
inside those envelopes, nor where its seconds went.  The
:class:`Ledger` closes that gap: while installed (via
:func:`repro.obs.set_ledger`) it

* tallies the bound quantities -- protocol rounds per batch, ``Phi``
  (max phase iterations), retries, quorum sizes, addresses computed
  (table-lookup vs on-the-fly), and GF(2^m) field operations by cost
  class (through the :mod:`repro.gf.opcount` sink it installs);
* pools the per-round module-congestion *distribution* (the
  :class:`~repro.obs.metrics._QuantileSketch` kept by
  :class:`~repro.mpc.stats.MPCStats`), not just the scalar max;
* attributes wall-clock to a small phase tree -- ``addressing`` /
  ``arbitration`` / ``memory`` / ``bookkeeping`` -- whose leaves must
  sum to the :meth:`run`-measured total within tolerance
  (:meth:`attribution` reports the residual).

Instrumentation sites follow the switchboard contract: they check
``obs.enabled()`` (or equivalently that :func:`repro.obs.ledger`
returned a non-``None`` object -- a ledger can only be reached while
installed, and installing one flips ``enabled()``), so the disabled
path stays within the <5% budget of ``tests/obs/test_overhead.py``.
The ledger itself never publishes: the protocol emits the bus-facing
``ledger.batch`` event from the fields of each :class:`BatchRecord`,
keeping this module import-light (no :mod:`repro.obs` dependency).

The checking side lives in :mod:`repro.core.bounds`
(:class:`~repro.core.bounds.BoundRegistry`) and the driver/renderer in
:mod:`repro.obs.explain` (``python -m repro explain``).
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.gf.gf2m import set_op_sink
from repro.gf.opcount import GFOpSink
from repro.obs.metrics import _QuantileSketch

__all__ = ["PHASE_KEYS", "BatchRecord", "Ledger"]

#: The attribution tree's leaves.  ``addressing`` is the address
#: computation before the protocol engine; ``arbitration`` the
#: ``MPC.step`` winner selection; ``memory`` the store read/write
#: kernels; ``bookkeeping`` everything else inside a protocol batch
#: (mask updates, history, quorum checks, event emission).
PHASE_KEYS = ("addressing", "arbitration", "memory", "bookkeeping")


@dataclass(frozen=True)
class BatchRecord:
    """Bound quantities of one protocol access batch.

    ``rounds`` is the total iteration count across the batch's phases
    (the MPC time spent in the iteration loops), ``phi`` the paper's
    per-phase worst case, ``retries`` the requests re-issued because a
    congested module turned them away (``stats.requests - served``).
    Congestion quantiles summarize the *per-step* distribution.
    """

    op: str
    requests: int
    copies: int
    majority: int
    modules: int
    rounds: int
    phi: int
    retries: int
    seconds: float
    arbitration_seconds: float
    memory_seconds: float
    bookkeeping_seconds: float
    congestion_p50: float
    congestion_p95: float
    congestion_max: int

    def event_fields(self) -> dict[str, object]:
        """The ``ledger.batch`` bus event payload (numbers only)."""
        return {
            "op": self.op,
            "requests": self.requests,
            "copies": self.copies,
            "majority": self.majority,
            "modules": self.modules,
            "rounds": self.rounds,
            "phi": self.phi,
            "retries": self.retries,
            "congestion_p50": self.congestion_p50,
            "congestion_p95": self.congestion_p95,
            "congestion_max": self.congestion_max,
        }


class Ledger:
    """Deterministic accounting of bound quantities and wall-clock.

    All counts are exact integers (identical across runs of the same
    workload); only the ``seconds`` attribution is measured.  Install
    with :func:`repro.obs.set_ledger` -- that wires the GF op sink into
    :mod:`repro.gf.gf2m` and flips the global ``enabled()`` guard.
    """

    def __init__(self) -> None:
        self.gf = GFOpSink()  # every field op while installed
        self.addressing_ops = GFOpSink()  # slice spent computing addresses
        self.congestion = _QuantileSketch()  # pooled per-step congestion
        self.counters: dict[str, int] = {}
        self.seconds: dict[str, float] = {k: 0.0 for k in PHASE_KEYS}
        self.batches: list[BatchRecord] = []
        self.total_seconds = 0.0
        self._prev_sink: GFOpSink | None = None

    # -- switchboard lifecycle (called by repro.obs.set_ledger) --------

    def on_install(self) -> None:
        """Route GF(2^m) op tallies into this ledger's sink."""
        self._prev_sink = set_op_sink(self.gf)

    def on_uninstall(self) -> None:
        """Restore the previously installed GF op sink (usually None)."""
        set_op_sink(self._prev_sink)
        self._prev_sink = None

    # -- emission sites -------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the named integer tally."""
        self.counters[name] = self.counters.get(name, 0) + int(delta)

    def add_seconds(self, phase: str, dt: float) -> None:
        """Attribute ``dt`` wall-clock seconds to one tree leaf."""
        self.seconds[phase] += dt

    def note_addressing(
        self, count: int, dt: float, gf_before: dict[str, int]
    ) -> None:
        """Fold one address-computation block into the ledger.

        ``gf_before`` is ``self.gf.as_dict()`` snapshotted before the
        block; the delta is the field work attributable to addressing
        (Theorem 8's quantity).  The table-hit vs on-the-fly split is
        counted inside the addressing layers themselves
        (``addr.on_the_fly`` / ``addr.table``).
        """
        self.count("addr.computed", count)
        self.seconds["addressing"] += dt
        cur = self.gf.as_dict()
        self.addressing_ops.add += cur["add"] - gf_before["add"]
        self.addressing_ops.mul += cur["mul"] - gf_before["mul"]
        self.addressing_ops.dlog += cur["dlog"] - gf_before["dlog"]
        self.addressing_ops.exp += cur["exp"] - gf_before["exp"]

    def record_batch(
        self,
        *,
        op: str,
        requests: int,
        copies: int,
        majority: int,
        modules: int,
        rounds: int,
        phi: int,
        stats: object,
        seconds: float,
        arbitration_seconds: float,
        memory_seconds: float,
    ) -> BatchRecord:
        """Close out one protocol batch; returns its :class:`BatchRecord`.

        ``bookkeeping`` is derived (batch wall minus the measured
        arbitration and memory leaves), so the batch's three leaves sum
        to its wall time exactly.  ``stats`` is the batch's
        :class:`~repro.mpc.stats.MPCStats`; its congestion sketch is
        pooled into the run-wide distribution.
        """
        retries = int(stats.requests) - int(stats.served)
        bookkeeping = max(0.0, seconds - arbitration_seconds - memory_seconds)
        self.seconds["bookkeeping"] += bookkeeping
        self.count("protocol.batches")
        self.count("protocol.rounds", rounds)
        self.count("protocol.retries", retries)
        self.count("protocol.quorum_copies", majority)
        self.congestion.merge(stats.congestion)
        summ = stats.congestion_summary()
        rec = BatchRecord(
            op=op,
            requests=int(requests),
            copies=int(copies),
            majority=int(majority),
            modules=int(modules),
            rounds=int(rounds),
            phi=int(phi),
            retries=retries,
            seconds=seconds,
            arbitration_seconds=arbitration_seconds,
            memory_seconds=memory_seconds,
            bookkeeping_seconds=bookkeeping,
            congestion_p50=float(summ["p50"] or 0.0),
            congestion_p95=float(summ["p95"] or 0.0),
            congestion_max=int(summ["max"]),
        )
        self.batches.append(rec)
        return rec

    # -- totals ---------------------------------------------------------

    @contextmanager
    def run(self) -> Iterator["Ledger"]:
        """Measure the wall-clock total the attribution tree must cover.

        Wrap the whole instrumented region (scheme accesses, workload
        included if the caller wants it attributed); nestable -- each
        entry adds its span to ``total_seconds``.
        """
        t0 = _time.perf_counter()
        try:
            yield self
        finally:
            self.total_seconds += _time.perf_counter() - t0

    def attribution(self) -> dict[str, object]:
        """The phase tree: leaves, their sum, and the unattributed rest.

        ``coverage`` is attributed/total (1.0 when every measured second
        sits in a leaf); the acceptance bar is coverage >= 0.95.
        """
        leaves = {k: self.seconds[k] for k in PHASE_KEYS}
        attributed = sum(leaves.values())
        total = self.total_seconds
        return {
            "total_seconds": total,
            "leaves": leaves,
            "attributed_seconds": attributed,
            "residual_seconds": max(0.0, total - attributed),
            "coverage": (attributed / total) if total > 0 else 1.0,
        }

    def congestion_summary(self) -> dict[str, float | None]:
        """p50/p95/max of the pooled per-step congestion distribution."""
        return {
            "p50": self.congestion.quantile(0.5),
            "p95": self.congestion.quantile(0.95),
            "max": self.congestion.quantile(1.0),
        }

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view: counters, field ops, congestion, attribution."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gf_ops": self.gf.as_dict(),
            "addressing_ops": self.addressing_ops.as_dict(),
            "congestion": self.congestion_summary(),
            "attribution": self.attribution(),
            "batches": [rec.event_fields() for rec in self.batches],
        }

    def reset(self) -> None:
        """Forget every count, time, and batch (sink stays installed)."""
        self.gf.reset()
        self.addressing_ops.reset()
        self.congestion.reset()
        self.counters.clear()
        self.seconds = {k: 0.0 for k in PHASE_KEYS}
        self.batches.clear()
        self.total_seconds = 0.0
