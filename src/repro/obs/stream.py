"""Bounded in-process event bus for streaming observability.

The tracer (:mod:`repro.obs.trace`) records *everything, for later*;
the bus delivers events *now, to whoever is listening* -- the live
watchdog (:mod:`repro.conformance.streaming`), health aggregators, or a
test harness.  Publication goes through :func:`repro.obs.publish`,
which forwards each event to the installed tracer (if recording) and to
the installed bus (if any), so one instrumentation site feeds both the
post-hoc and the online consumers.

Backpressure contract
---------------------

Every :class:`Subscription` owns a bounded FIFO.  ``publish`` never
blocks and never grows a queue past its capacity: when a subscriber's
queue is full the event is **dropped for that subscriber** and counted
(``Subscription.dropped``, plus the bus-wide ``EventBus.dropped``).
Consumers poll with :meth:`Subscription.drain`; a consumer that cannot
keep up loses events -- visibly, via the drop counters the watchdog
exports as the ``watch.events_dropped`` gauge -- rather than stalling
the protocol under test.  When no bus is installed,
:func:`repro.obs.enabled` stays False and instrumented code pays the
usual single-guard cost.

Events are plain dicts.  The bus stamps each with a monotonic ``seq``
(its own arbitration order, mirroring the tracer's) and the event
``name``; one dict is shared by all matching subscriptions, so
consumers must treat events as read-only.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["Subscription", "EventBus", "HealthAggregator"]

#: default per-subscription queue capacity (events)
DEFAULT_CAPACITY = 65536


class Subscription:
    """One subscriber's bounded event queue.

    Parameters
    ----------
    names:
        Event names to receive, or None for every event.
    capacity:
        Queue bound; a push past it drops the event (counted).
    """

    __slots__ = ("names", "capacity", "_queue", "delivered", "dropped")

    def __init__(
        self,
        names: "frozenset[str] | set[str] | None" = None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if capacity < 1:
            raise ValueError("subscription capacity must be >= 1")
        self.names = frozenset(names) if names is not None else None
        self.capacity = capacity
        self._queue: deque = deque()
        self.delivered = 0
        self.dropped = 0

    def matches(self, name: str) -> bool:
        """True iff this subscription wants events named ``name``."""
        return self.names is None or name in self.names

    def push(self, event: dict) -> bool:
        """Enqueue one event; False (and a drop count) when full."""
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(event)
        self.delivered += 1
        return True

    def drain(self, limit: int | None = None) -> list[dict]:
        """Pop up to ``limit`` queued events (all of them by default)."""
        n = len(self._queue) if limit is None else min(limit, len(self._queue))
        return [self._queue.popleft() for _ in range(n)]

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        what = "all" if self.names is None else ",".join(sorted(self.names))
        return (
            f"Subscription({what}, queued={len(self._queue)}, "
            f"dropped={self.dropped})"
        )


class EventBus:
    """Fan-out of published events to bounded subscriptions.

    ``capacity`` is the default queue bound handed to
    :meth:`subscribe`; each subscription may override it.  Publishing
    with zero subscriptions is cheap (one list walk over nothing) but
    the real zero-cost path is not installing a bus at all --
    :func:`repro.obs.enabled` then stays False and instrumented sites
    never build the event dict.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("bus capacity must be >= 1")
        self.capacity = capacity
        self._subs: list[Subscription] = []
        self._seq = 0
        self.published = 0
        self.dropped = 0

    def subscribe(
        self,
        names: "frozenset[str] | set[str] | None" = None,
        capacity: int | None = None,
    ) -> Subscription:
        """Register a subscription for ``names`` (None = everything)."""
        sub = Subscription(
            names=names,
            capacity=self.capacity if capacity is None else capacity,
        )
        self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a subscription (unknown subscriptions are ignored)."""
        try:
            self._subs.remove(sub)
        except ValueError:
            pass

    def publish(self, name: str, fields: dict) -> None:
        """Stamp ``fields`` with (name, seq) and push to every matching
        subscription.  The dict is shared read-only across subscribers."""
        self._seq += 1
        event = dict(fields)
        event["name"] = name
        event["seq"] = self._seq
        self.published += 1
        for sub in self._subs:
            if sub.matches(name) and not sub.push(event):
                self.dropped += 1

    @property
    def n_subscriptions(self) -> int:
        """Live subscription count."""
        return len(self._subs)

    def __repr__(self) -> str:
        return (
            f"EventBus({len(self._subs)} subs, published={self.published}, "
            f"dropped={self.dropped})"
        )


class HealthAggregator:
    """Fold ``protocol.health`` / ``scheme.topology`` events into
    rolling ``watch.*`` metrics.

    The protocol publishes one ``protocol.health`` event per batch (see
    :mod:`repro.obs`); this consumer maintains the live gauges the
    watchdog snapshots: batch/request/lost/degraded counters, the
    current round, the minimum quorum margin seen (how close any
    variable class came to losing its majority), and load-skew /
    iteration histograms whose snapshots carry p50/p95/p99.

    Also folds the ledger's ``ledger.batch`` events (published by the
    protocol whenever a bound-accounting ledger is installed, see
    :mod:`repro.obs.ledger`) into ``watch.ledger_*`` counters and a
    ``watch.congestion_p95`` histogram, so a live watchdog sees the
    congestion distribution the bound registry checks offline.
    """

    def __init__(self, registry: "MetricsRegistry"):
        self.registry = registry
        self.batches = 0
        self.lost = 0
        self.degraded = 0
        self.min_quorum_margin: int | None = None
        self.last_round = 0

    def consume(self, event: dict) -> None:
        """Fold one bus event (non-health events are ignored)."""
        name = event.get("name")
        if name == "scheme.topology":
            m = self.registry
            m.gauge("watch.copies").set(int(event.get("copies", 0)))
            m.gauge("watch.majority").set(int(event.get("majority", 0)))
            return
        if name == "ledger.batch":
            m = self.registry
            m.counter("watch.ledger_batches").inc()
            m.counter("watch.ledger_rounds").inc(int(event.get("rounds", 0)))
            m.counter("watch.ledger_retries").inc(
                int(event.get("retries", 0))
            )
            p95 = event.get("congestion_p95")
            if p95 is not None:
                m.histogram("watch.congestion_p95").observe(float(p95))
            return
        if name != "protocol.health":
            return
        m = self.registry
        self.batches += 1
        self.last_round = int(event.get("round", self.last_round))
        lost = int(event.get("lost", 0))
        degraded = int(event.get("degraded", 0))
        self.lost += lost
        self.degraded += degraded
        m.counter("watch.batches").inc()
        m.counter("watch.requests").inc(int(event.get("requests", 0)))
        m.counter("watch.lost").inc(lost)
        m.counter("watch.degraded").inc(degraded)
        m.gauge("watch.round").set(self.last_round)
        margin = event.get("quorum_margin")
        if margin is not None:
            margin = int(margin)
            if (
                self.min_quorum_margin is None
                or margin < self.min_quorum_margin
            ):
                self.min_quorum_margin = margin
            # gauges merge as high-watermarks, so track the *deficit*
            # (majority - margin shortfall) high-watermark alongside the
            # raw latest value
            m.gauge("watch.quorum_margin").set(margin)
        skew = event.get("load_skew")
        if skew is not None:
            m.histogram("watch.load_skew").observe(int(skew))
        iters = event.get("iterations")
        if iters is not None:
            m.histogram("watch.iterations").observe(int(iters))

    def __repr__(self) -> str:
        return (
            f"HealthAggregator(batches={self.batches}, lost={self.lost}, "
            f"degraded={self.degraded}, "
            f"min_quorum_margin={self.min_quorum_margin})"
        )
