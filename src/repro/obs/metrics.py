"""Metrics primitives: counters, gauges, histograms, labeled timers.

A :class:`MetricsRegistry` is a named bag of metric instruments with
get-or-create semantics (``registry.counter("protocol.iterations")``),
point-in-time :meth:`~MetricsRegistry.snapshot`, cross-registry
:meth:`~MetricsRegistry.merge` (e.g. to fold per-worker registries into
one), :meth:`~MetricsRegistry.reset`, and JSON export.  Instruments may
carry labels, which become part of the metric identity
(``timer("protocol.access_seconds", op="read")`` snapshots under the key
``protocol.access_seconds{op=read}``).

Merge semantics per instrument kind: counters, histograms, and timers
accumulate; gauges keep the maximum (the registry's gauges are
high-watermarks such as ``mpc.max_congestion``).

The global registry lives in :mod:`repro.obs`; collection is off by
default and instrumented code never touches these objects until
:func:`repro.obs.enable_metrics` is called.
"""

from __future__ import annotations

import json
import math
import time

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "QUANTILES",
]

#: Default fixed histogram buckets: geometric-ish upper bounds suited to
#: iteration/congestion counts (values above the last bound land in +Inf).
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 1000)

#: Quantiles every histogram/timer snapshot summarizes (p50/p95/p99).
QUANTILES = (0.5, 0.95, 0.99)


class _QuantileSketch:
    """Bounded-memory quantile estimator with deterministic thinning.

    Keeps every ``stride``-th observation; when the retained sample set
    reaches ``cap`` it drops every other sample and doubles the stride.
    No randomness is involved (rule D2: reservoir sampling would need an
    RNG), so identical observation sequences produce identical sketches.
    Estimates are nearest-rank quantiles over the retained samples --
    exact below ``cap`` observations, a stride-uniform subsample above.
    """

    __slots__ = ("cap", "stride", "n", "samples", "_phase")

    def __init__(self, cap: int = 512):
        if cap < 2:
            raise ValueError("sketch cap must be >= 2")
        self.cap = cap
        self.reset()

    def observe(self, value: float) -> None:
        """Fold one observation into the sketch."""
        self.n += 1
        if self._phase == 0:
            self.samples.append(value)
            if len(self.samples) >= self.cap:
                self._thin()
        self._phase = (self._phase + 1) % self.stride

    def _thin(self) -> None:
        self.samples = self.samples[::2]
        self.stride *= 2

    def quantile(self, p: float) -> float | None:
        """Nearest-rank quantile of the retained samples (None if empty)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("quantile p must be in [0, 1]")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, int(p * len(ordered)))
        return ordered[rank]

    def summary(self, suffix: str = "") -> dict:
        """The standard p50/p95/p99 snapshot keys."""
        return {
            f"p{int(q * 100)}{suffix}": self.quantile(q) for q in QUANTILES
        }

    def merge(self, other: "_QuantileSketch") -> None:
        """Pool another sketch's samples, re-thinning back under cap."""
        self.n += other.n
        self.samples.extend(other.samples)
        self.stride = max(self.stride, other.stride)
        while len(self.samples) >= self.cap:
            self._thin()
        self._phase = 0

    def reset(self) -> None:
        """Forget every observation."""
        self.n = 0
        self.stride = 1
        self._phase = 0
        self.samples: list = []


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, delta: int | float = 1) -> None:
        """Add ``delta`` (must be >= 0) to the count."""
        if delta < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += delta

    def snapshot(self) -> dict:
        """Plain-JSON state of the instrument."""
        return {"type": self.kind, "value": self.value}

    def merge(self, other: "Counter") -> None:
        """Accumulate another counter into this one."""
        self.value += other.value

    def reset(self) -> None:
        """Zero the count."""
        self.value = 0


class Gauge:
    """A sampled value; merged across registries as a high-watermark."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value) -> None:
        """Record the current value."""
        self.value = value

    def update_max(self, value) -> None:
        """Keep the running maximum of the observed values."""
        if value > self.value:
            self.value = value

    def snapshot(self) -> dict:
        """Plain-JSON state of the instrument."""
        return {"type": self.kind, "value": self.value}

    def merge(self, other: "Gauge") -> None:
        """High-watermark combine: keep the larger value."""
        self.value = max(self.value, other.value)

    def reset(self) -> None:
        """Zero the gauge."""
        self.value = 0


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max side statistics.

    ``buckets`` are inclusive upper bounds; an observation larger than
    every bound is counted in the implicit ``+Inf`` bucket.  A bounded
    deterministic :class:`_QuantileSketch` rides along, so snapshots
    carry p50/p95/p99 alongside the bucket counts.
    """

    kind = "histogram"
    __slots__ = (
        "buckets", "bucket_counts", "count", "total", "min", "max", "sketch",
    )

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets = tuple(buckets)
        self.sketch = _QuantileSketch()
        self.reset()

    def observe(self, value) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.sketch.observe(value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, p: float) -> float | None:
        """Estimated p-quantile of the observations (None if empty)."""
        return self.sketch.quantile(p)

    def snapshot(self) -> dict:
        """Plain-JSON state of the instrument."""
        labels = [f"<={b}" for b in self.buckets] + ["+Inf"]
        snap = {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": dict(zip(labels, self.bucket_counts)),
        }
        snap.update(self.sketch.summary())
        return snap

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram (bucket layouts must match)."""
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        self.count += other.count
        self.total += other.total
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        for v in (other.min, other.max):
            if v is not None:
                self.min = v if self.min is None else min(self.min, v)
                self.max = v if self.max is None else max(self.max, v)
        self.sketch.merge(other.sketch)

    def reset(self) -> None:
        """Clear every bucket and side statistic."""
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.sketch.reset()


class Timer:
    """Accumulated wall time of a repeated operation (seconds).

    Tracks count/total/max and the best-of-k ``min`` -- regression
    checks compare best observed times, which are the least noisy --
    plus p50/p95/p99 via a bounded deterministic sketch.
    """

    kind = "timer"
    __slots__ = ("count", "total", "max", "min", "sketch")

    def __init__(self):
        self.sketch = _QuantileSketch()
        self.reset()

    def observe(self, seconds: float) -> None:
        """Fold one measured duration into the totals."""
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        self.sketch.observe(seconds)

    def time(self) -> "_TimerContext":
        """Context manager measuring the ``with`` block's duration."""
        return _TimerContext(self)

    def quantile(self, p: float) -> float | None:
        """Estimated p-quantile of the durations (None if empty)."""
        return self.sketch.quantile(p)

    def snapshot(self) -> dict:
        """Plain-JSON state of the instrument."""
        mean = self.total / self.count if self.count else 0.0
        snap = {
            "type": self.kind,
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min,
            "max_seconds": self.max,
            "mean_seconds": mean,
        }
        snap.update(self.sketch.summary(suffix="_seconds"))
        return snap

    def merge(self, other: "Timer") -> None:
        """Accumulate another timer into this one."""
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min,
                                                              other.min)
        self.sketch.merge(other.sketch)

    def reset(self) -> None:
        """Zero the accumulated time (``min`` becomes None: no samples)."""
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.min = None
        self.sketch.reset()


class _TimerContext:
    """``with timer.time():`` support."""

    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: Timer):
        self._timer = timer

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._timer.observe(time.perf_counter() - self._t0)
        return False


def _key(name: str, labels: dict) -> str:
    """Canonical metric key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named instruments with get-or-create, snapshot, merge, and reset.

    All accessor methods (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`, :meth:`timer`) return the existing instrument for
    the (name, labels) identity or create a fresh one; asking for an
    existing name with a different instrument kind raises ``ValueError``.
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, labels: dict, kind: type, *args):
        key = _key(name, labels)
        m = self._metrics.get(key)
        if m is None:
            m = kind(*args)
            self._metrics[key] = m
        elif not isinstance(m, kind):
            raise ValueError(
                f"metric {key!r} is a {m.kind}, not a {kind.kind}"
            )
        return m

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter."""
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create a gauge."""
        return self._get(name, labels, Gauge)

    def histogram(
        self, name: str, buckets: tuple = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        return self._get(name, labels, Histogram, buckets)

    def timer(self, name: str, **labels) -> Timer:
        """Get or create a labeled timer."""
        return self._get(name, labels, Timer)

    def snapshot(self) -> dict:
        """Point-in-time plain-JSON view of every instrument, key-sorted."""
        return {k: self._metrics[k].snapshot() for k in sorted(self._metrics)}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (see module docstring for
        the per-kind combine rules); unseen metrics are adopted."""
        for key, m in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                mine = (
                    Histogram(m.buckets) if isinstance(m, Histogram)
                    else type(m)()
                )
                self._metrics[key] = mine
            elif type(mine) is not type(m):
                raise ValueError(
                    f"metric {key!r} is a {mine.kind} here, a {m.kind} there"
                )
            mine.merge(m)

    def reset(self) -> None:
        """Zero every instrument (registrations and labels survive)."""
        for m in self._metrics.values():
            m.reset()

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, default=_jsonable)

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


def _jsonable(x):
    """Fallback encoder for numpy scalars and other int/float-likes."""
    if hasattr(x, "item"):
        return x.item()
    if isinstance(x, float) and not math.isfinite(x):
        return str(x)
    raise TypeError(f"not JSON serializable: {type(x).__name__}")
