"""Online windowed conformance checking over the live event bus.

The batch :class:`~repro.conformance.checker.ConsistencyChecker` sorts
a *whole* recorded trace -- O(trace) memory, verdict at process exit.
This module runs the same per-variable serial-memory verification
*while the system executes*, with bounded memory:

* :class:`StreamingChecker` buffers ``mem.op`` / ``kv.op`` events by
  logical round and **closes** a round once the stream has advanced
  ``window`` rounds past it -- the protocol's total round order means a
  closed round can never receive another operation (late arrivals are
  counted, not checked).  Closed rounds are fed, in arbitration order,
  to the same :class:`~repro.conformance.checker.MemOpCore` /
  :class:`~repro.conformance.checker.KvOpCore` the batch checker uses,
  and old past-value state is retired, so retained state is
  O(window x live variables) instead of O(trace).
* :class:`Watchdog` attaches a streaming checker plus a
  :class:`~repro.obs.stream.HealthAggregator` to an event bus: one
  ``poll()`` drains the bounded subscription, verifies everything the
  window allows, and updates the live ``watch.*`` gauges (checker lag,
  retained state, drop counts, violations).
* :func:`run_watchdog_canary` proves the point online: the ``q/2 + 1``
  stale-majority attack -- the one fault the protocol cannot mask -- is
  flagged *mid-run*, rounds before the trace ends, pinned to the exact
  (processor, round, variable); the ``<= q/2`` control run stays
  violation-free and shows up only in the degraded-health gauges.

Windowed precision: retiring past-value state means a stale value can
only be *named* stale while its writing round is within roughly two
windows of the reader; older divergences are still flagged, but as
``phantom-read``.  The violation/no-violation verdict itself never
depends on the window, which is what the differential tests pin against
the batch checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import repro.obs as _obs
from repro.conformance.checker import (
    KvOpCore,
    MemOpCore,
    Violation,
    ViolationReport,
    _OP_RANK,
)
from repro.conformance.recorder import (
    KV_EVENT,
    MEM_EVENT,
    KvOp,
    MemOp,
    kv_ops_from_events,
    mem_ops_from_events,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import EventBus, HealthAggregator
from repro.workloads.generators import op_batches

if TYPE_CHECKING:  # pragma: no cover - typing only, schemes import lazily
    from repro.schemes import MemoryScheme

__all__ = [
    "StreamingChecker",
    "Watchdog",
    "HealthSnapshot",
    "OnlineCanaryResult",
    "StreamFuzzResult",
    "SCHEME_KEYS",
    "scheme_by_key",
    "run_watchdog_canary",
    "stream_fuzz",
]

#: watchdog events: the two op streams plus the bus-only health and
#: bound-accounting feeds
_WATCH_EVENTS = frozenset(
    {MEM_EVENT, KV_EVENT, "protocol.health", "scheme.topology", "ledger.batch"}
)


class StreamingChecker:
    """Incremental windowed PRAM-conformance verifier.

    Parameters
    ----------
    window:
        Rounds a round stays open after the stream moves past it.  A
        round ``r`` is closed (checked and retired) once an operation
        with round ``> r + window`` arrives.  Must cover the protocol's
        reordering horizon -- with the repo's strictly-increasing batch
        timestamps any ``window >= 1`` is safe; larger windows only
        widen the stale-read naming range (see module docstring).
    max_violations:
        Listed-violation cap per discipline (as in the batch checker).
    on_violation:
        Optional callback invoked with each :class:`Violation` the
        moment its round is closed -- the online-detection hook.
    """

    def __init__(
        self,
        window: int = 8,
        max_violations: int = 100,
        on_violation: Callable[[Violation], None] | None = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._mem = MemOpCore(max_violations, on_violation=on_violation)
        self._kv = KvOpCore(max_violations, on_violation=on_violation)
        self._pending: dict[int, list[MemOp]] = {}
        self._kv_pending: dict[int, list[KvOp]] = {}
        self.high = -1  # highest round seen
        self.retired_through = -1  # rounds <= this are closed
        self.late_dropped = 0
        self.events_fed = 0
        self.peak_state = 0
        self.peak_buffered = 0

    # -- feeding -------------------------------------------------------

    def feed_event(self, event: dict) -> None:
        """Feed one bus/trace event (non-op events are ignored)."""
        name = event.get("name")
        if name == MEM_EVENT:
            self.feed_mem(mem_ops_from_events((event,))[0])
        elif name == KV_EVENT:
            self.feed_kv(kv_ops_from_events((event,))[0])

    def feed_mem(self, op: MemOp) -> None:
        """Buffer one memory operation and advance the window."""
        self.events_fed += 1
        if op.round <= self.retired_through:
            self.late_dropped += 1
            return
        self._pending.setdefault(op.round, []).append(op)
        self._advance(op.round)

    def feed_kv(self, op: KvOp) -> None:
        """Buffer one kv operation and advance the window."""
        self.events_fed += 1
        if op.round <= self.retired_through:
            self.late_dropped += 1
            return
        self._kv_pending.setdefault(op.round, []).append(op)
        self._advance(op.round)

    def finish(self) -> ViolationReport:
        """Close every still-open round and return the final report."""
        for r in sorted(set(self._pending) | set(self._kv_pending)):
            self._close_round(r)
        if self.high > self.retired_through:
            self.retired_through = self.high
        return self.report

    # -- window machinery ----------------------------------------------

    def _advance(self, r: int) -> None:
        if r > self.high:
            self.high = r
        self._note_state()
        horizon = self.high - self.window
        if horizon <= self.retired_through:
            return
        due = sorted(
            rr
            for rr in set(self._pending) | set(self._kv_pending)
            if rr <= horizon
        )
        for rr in due:
            self._close_round(rr)
        self.retired_through = horizon
        # past-value state older than one extra window behind the
        # retirement point can no longer be referenced by an open round
        self._mem.retire(horizon - self.window + 1)

    def _close_round(self, r: int) -> None:
        mem = self._pending.pop(r, None)
        if mem:
            mem.sort(key=lambda o: (_OP_RANK[o.op], o.seq))
            for o in mem:
                self._mem.feed(o)
        kv = self._kv_pending.pop(r, None)
        if kv:
            kv.sort(key=lambda o: o.seq)
            for o in kv:
                self._kv.feed(o)

    def _note_state(self) -> None:
        s = self.state_size
        if s > self.peak_state:
            self.peak_state = s
        b = self.buffered
        if b > self.peak_buffered:
            self.peak_buffered = b

    # -- introspection -------------------------------------------------

    @property
    def report(self) -> ViolationReport:
        """Merged mem+kv report over everything closed so far."""
        rep = ViolationReport()
        rep.merge(self._mem.report)
        rep.merge(self._kv.report)
        return rep

    @property
    def n_violations(self) -> int:
        """Violations flagged so far (listed + truncated)."""
        return (
            self._mem.report.n_violations + self._kv.report.n_violations
        )

    @property
    def buffered(self) -> int:
        """Operations waiting in still-open rounds."""
        return sum(len(v) for v in self._pending.values()) + sum(
            len(v) for v in self._kv_pending.values()
        )

    @property
    def lag_rounds(self) -> int:
        """Open rounds between the stream head and the retired point."""
        if self.high < 0:
            return 0
        return self.high - self.retired_through

    @property
    def state_size(self) -> int:
        """Total retained entries: buffered ops + core model state."""
        return self.buffered + self._mem.state_size + self._kv.state_size

    def __repr__(self) -> str:
        return (
            f"StreamingChecker(window={self.window}, high={self.high}, "
            f"retired={self.retired_through}, buffered={self.buffered}, "
            f"violations={self.n_violations})"
        )


@dataclass
class HealthSnapshot:
    """One point-in-time health reading of a :class:`Watchdog`."""

    round: int
    batches: int
    requests: int
    lost: int
    degraded: int
    min_quorum_margin: int | None
    checker_lag: int
    state_size: int
    buffered: int
    violations: int
    events_dropped: int

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "round": self.round,
            "batches": self.batches,
            "requests": self.requests,
            "lost": self.lost,
            "degraded": self.degraded,
            "min_quorum_margin": self.min_quorum_margin,
            "checker_lag": self.checker_lag,
            "state_size": self.state_size,
            "buffered": self.buffered,
            "violations": self.violations,
            "events_dropped": self.events_dropped,
        }


class Watchdog:
    """Live conformance + health monitor attached to an event bus.

    Subscribes to the op and health streams, feeds a
    :class:`StreamingChecker` and a
    :class:`~repro.obs.stream.HealthAggregator`, and exports the
    ``watch.*`` metrics.  Call :meth:`poll` between protocol batches
    (or on any cadence); the subscription queue is bounded, so a
    watchdog that polls too rarely loses events *visibly* (the
    ``watch.events_dropped`` gauge) instead of stalling the system.
    """

    def __init__(
        self,
        bus: EventBus,
        window: int = 8,
        max_violations: int = 100,
        registry: MetricsRegistry | None = None,
        queue_capacity: int | None = None,
    ):
        self.bus = bus
        self.registry = registry if registry is not None else MetricsRegistry()
        self.checker = StreamingChecker(
            window=window,
            max_violations=max_violations,
            on_violation=self._on_violation,
        )
        self.health = HealthAggregator(self.registry)
        self.subscription = bus.subscribe(
            names=_WATCH_EVENTS, capacity=queue_capacity
        )
        self.snapshots: list[HealthSnapshot] = []
        self.violations_seen = 0
        #: (violation, stream-head round when it was flagged)
        self.first_violation: tuple[Violation, int] | None = None

    def _on_violation(self, v: Violation) -> None:
        self.violations_seen += 1
        if self.first_violation is None:
            self.first_violation = (v, self.checker.high)
        self.registry.counter("watch.violations").inc()

    def poll(self) -> int:
        """Drain the subscription; returns the number of events routed."""
        events = self.subscription.drain()
        for e in events:
            name = e.get("name")
            if name == MEM_EVENT or name == KV_EVENT:
                self.checker.feed_event(e)
            else:
                self.health.consume(e)
        self._update_gauges()
        return len(events)

    def _update_gauges(self) -> None:
        m = self.registry
        m.gauge("watch.checker_lag").set(self.checker.lag_rounds)
        m.gauge("watch.state_size").update_max(self.checker.state_size)
        m.gauge("watch.events_dropped").set(self.subscription.dropped)

    def snapshot(self) -> HealthSnapshot:
        """Record and return one health snapshot."""
        req = self.registry.counter("watch.requests").value
        snap = HealthSnapshot(
            round=self.health.last_round,
            batches=self.health.batches,
            requests=int(req),
            lost=self.health.lost,
            degraded=self.health.degraded,
            min_quorum_margin=self.health.min_quorum_margin,
            checker_lag=self.checker.lag_rounds,
            state_size=self.checker.state_size,
            buffered=self.checker.buffered,
            violations=self.checker.n_violations,
            events_dropped=self.subscription.dropped,
        )
        self.snapshots.append(snap)
        return snap

    def finish(self) -> ViolationReport:
        """Drain, close every open round, and return the final report."""
        self.poll()
        rep = self.checker.finish()
        self._update_gauges()
        return rep

    def detach(self) -> None:
        """Unsubscribe from the bus (idempotent)."""
        self.bus.unsubscribe(self.subscription)

    @property
    def ok(self) -> bool:
        """No violations flagged so far."""
        return self.checker.n_violations == 0


# ---------------------------------------------------------------------------
# online stale-majority canary


@dataclass
class OnlineCanaryResult:
    """Outcome of the online stale-majority detection experiment."""

    expected: list[tuple[int, int, int]]  # (processor, round, variable)
    silent_wrong_reads: int
    detected_at_round: int | None  # stream round when first flagged
    last_round: int  # final round of the run
    report: ViolationReport
    snapshots: list[HealthSnapshot] = field(default_factory=list)
    control_violations: int = 0
    control_degraded: int = 0
    control_lost: int = 0

    @property
    def flagged(self) -> set[tuple[int, int, int]]:
        """(proc, round, var) of every stale-read violation."""
        return {
            (v.proc, v.round, int(v.var))
            for v in self.report.violations
            if v.kind == "stale-read"
        }

    @property
    def detected_online(self) -> bool:
        """Every silently-wrong read was flagged *before* the run ended,
        pinned to its exact (processor, round, variable)."""
        return (
            self.silent_wrong_reads > 0
            and self.detected_at_round is not None
            and self.detected_at_round < self.last_round
            and set(self.expected) <= self.flagged
        )

    @property
    def control_clean(self) -> bool:
        """The <= q/2 control run: zero violations, visibly degraded."""
        return self.control_violations == 0 and self.control_degraded > 0

    @property
    def ok(self) -> bool:
        """Attack caught mid-run AND the below-threshold control stayed
        violation-free."""
        return self.detected_online and self.control_clean

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "schema": 1,
            "ok": self.ok,
            "detected_online": self.detected_online,
            "control_clean": self.control_clean,
            "expected": [list(e) for e in self.expected],
            "flagged": sorted(list(f) for f in self.flagged),
            "silent_wrong_reads": self.silent_wrong_reads,
            "detected_at_round": self.detected_at_round,
            "last_round": self.last_round,
            "control_violations": self.control_violations,
            "control_degraded": self.control_degraded,
            "control_lost": self.control_lost,
            "snapshots": [s.to_dict() for s in self.snapshots],
            "report": self.report.to_dict(),
        }


def run_watchdog_canary(
    seed: int = 0,
    n_victims: int = 3,
    window: int = 8,
    engine: str | None = None,
) -> OnlineCanaryResult:
    """Run the q/2+1 stale-majority attack under a live watchdog.

    The attack round (3) must be *closed* -- and its stale reads flagged
    -- while the run is still issuing batches: after the poisoned read,
    the run keeps writing for ``window + 2`` more rounds, polling the
    watchdog after every batch, and records the stream round at which
    the first violation fired.  A second, below-threshold run (exactly
    ``q/2`` stale copies, with the *stale* cells' modules failed so the
    fresh majority answers) must produce zero violations and non-zero
    degraded-health gauges.
    """
    from repro.faults.attacks import build_stale_majority, payload_values

    # -- attack run: q/2 + 1 stale copies, fresh remnant unreachable ----
    attack = build_stale_majority(seed=seed, n_victims=n_victims, engine=engine)
    bus = EventBus()
    watchdog = Watchdog(bus, window=window)
    prev = _obs.set_bus(bus)
    try:
        attack.seed_history()
        watchdog.poll()
        attack.go_stale()
        res = attack.read(time=3)
        watchdog.poll()
        watchdog.snapshot()
        expected, silent_wrong = attack.victim_verdict(res, time=3)
        detected_at = None
        last_round = 3
        for t in range(4, 3 + window + 3):
            attack.write_tail(time=t, values=payload_values(t, attack.idx))
            last_round = t
            watchdog.poll()
            if detected_at is None and watchdog.violations_seen > 0:
                detected_at = t
            watchdog.snapshot()
        watchdog.finish()
        watchdog.snapshot()
    finally:
        _obs.set_bus(prev)

    # -- control run: exactly q/2 stale copies, fresh majority answers --
    control = build_stale_majority(seed=seed, n_victims=n_victims, engine=engine)
    cbus = EventBus()
    cwatch = Watchdog(cbus, window=window)
    cprev = _obs.set_bus(cbus)
    try:
        control.seed_history()
        control.go_stale(k=control.ctx.tolerance, cut="stale")
        control.read(time=3)
        for t in range(4, 3 + window + 3):
            control.write_tail(time=t, values=payload_values(t, control.idx))
            cwatch.poll()
        cwatch.finish()
    finally:
        _obs.set_bus(cprev)

    return OnlineCanaryResult(
        expected=expected,
        silent_wrong_reads=silent_wrong,
        detected_at_round=detected_at,
        last_round=last_round,
        report=watchdog.checker.report,
        snapshots=list(watchdog.snapshots),
        control_violations=cwatch.checker.n_violations,
        control_degraded=cwatch.health.degraded,
        control_lost=cwatch.health.lost,
    )


# ---------------------------------------------------------------------------
# streaming fuzz driver


#: CLI keys for the six conformance schemes
SCHEME_KEYS = ("single", "mv", "uw", "grid", "pp2", "pp4")


def scheme_by_key(key: str) -> "MemoryScheme":
    """Build one conformance scheme by its CLI key (see
    :func:`repro.conformance.differential.conformance_schemes`)."""
    from repro.schemes import (
        GridScheme,
        MehlhornVishkinScheme,
        PPAdapter,
        SingleCopyScheme,
        UpfalWigdersonScheme,
    )

    builders = {
        "single": lambda: SingleCopyScheme(64, 512, hashed=True),
        "mv": lambda: MehlhornVishkinScheme(64, 512, c=3),
        "uw": lambda: UpfalWigdersonScheme(64, 512, c=2),
        "grid": lambda: GridScheme(63),
        "pp2": lambda: PPAdapter(2, 3),
        "pp4": lambda: PPAdapter(4, 3),
    }
    if key not in builders:
        raise ValueError(f"unknown scheme key {key!r}; one of {SCHEME_KEYS}")
    return builders[key]()


@dataclass
class StreamFuzzResult:
    """Outcome of one streaming fuzz run under the watchdog."""

    scheme: str
    seed: int
    total_ops: int
    window: int
    events: int
    rounds: int
    peak_state: int
    peak_buffered: int
    late_dropped: int
    events_dropped: int
    report: ViolationReport
    snapshots: list[HealthSnapshot] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Clean run: no violations, no silent event loss."""
        return self.report.ok and self.events_dropped == 0

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "schema": 1,
            "ok": self.ok,
            "scheme": self.scheme,
            "seed": self.seed,
            "total_ops": self.total_ops,
            "window": self.window,
            "events": self.events,
            "rounds": self.rounds,
            "peak_state": self.peak_state,
            "peak_buffered": self.peak_buffered,
            "late_dropped": self.late_dropped,
            "events_dropped": self.events_dropped,
            "report": self.report.to_dict(),
            "snapshots": [s.to_dict() for s in self.snapshots],
            "metrics": self.metrics,
        }


def stream_fuzz(
    scheme: "MemoryScheme | str | None" = None,
    total_ops: int = 2000,
    seed: int = 0,
    window: int = 8,
    max_batch: int = 32,
    snapshot_every: int = 50,
    on_snapshot: Callable[[HealthSnapshot], None] | None = None,
    engine: str | None = None,
) -> StreamFuzzResult:
    """Replay a seeded workload with the live watchdog attached.

    No trace is recorded -- every ``mem.op`` flows through the bounded
    bus into the :class:`StreamingChecker`, which is how the memory
    bound is real: at no point does the process hold the full op
    history.  ``scheme`` is a scheme instance or a key from
    :data:`SCHEME_KEYS` (default ``pp2``).
    """
    label = scheme if isinstance(scheme, str) else None
    if scheme is None or isinstance(scheme, str):
        scheme = scheme_by_key(scheme or "pp2")
    if label is None:
        label = scheme.name
    from repro.faults.attacks import payload_values

    plan = op_batches(
        scheme.M, total_ops, seed=seed, max_batch=min(max_batch, scheme.M)
    )
    bus = EventBus()
    watchdog = Watchdog(bus, window=window)
    store = scheme.make_store()
    prev = _obs.set_bus(bus)
    ops = 0
    t = 0
    try:
        for t, (kind, idx) in enumerate(plan, start=1):
            ops += idx.size
            if kind == "write":
                scheme.write(
                    idx, values=payload_values(t, idx), store=store, time=t,
                    engine=engine,
                )
            else:
                scheme.read(idx, store=store, time=t, engine=engine)
            watchdog.poll()
            if snapshot_every and t % snapshot_every == 0:
                snap = watchdog.snapshot()
                if on_snapshot is not None:
                    on_snapshot(snap)
    finally:
        _obs.set_bus(prev)
    report = watchdog.finish()
    snap = watchdog.snapshot()
    if on_snapshot is not None:
        on_snapshot(snap)
    return StreamFuzzResult(
        scheme=label,
        seed=seed,
        total_ops=ops,
        window=window,
        events=watchdog.checker.events_fed,
        rounds=t,
        peak_state=watchdog.checker.peak_state,
        peak_buffered=watchdog.checker.peak_buffered,
        late_dropped=watchdog.checker.late_dropped,
        events_dropped=watchdog.subscription.dropped,
        report=report,
        snapshots=list(watchdog.snapshots),
        metrics=watchdog.registry.snapshot(),
    )
