"""Cross-scheme differential fuzzing against a serial-memory oracle.

One seeded workload (:func:`repro.workloads.generators.op_batches`) is
replayed, operation for operation, through every memory-organization
scheme in the comparison set *and* through a plain Python dict -- the
serial memory the paper's theorem says replicated storage must be
indistinguishable from.  Three independent verdicts are diffed per
scheme:

1. every read batch against the oracle's answer at that round;
2. the final state (a sweep read of every variable ever written)
   against the oracle's final state;
3. the recorded operation trace against the
   :class:`~repro.conformance.checker.ConsistencyChecker`'s
   serial-memory-per-variable semantics.

Because all schemes consume the identical workload, oracle agreement is
transitive: six green rows mean all six implementations agree with each
other as well as with serial memory.

:func:`stale_majority_canary` is the harness's self-test -- the one
fault the majority protocol provably cannot mask (``q/2 + 1`` stale
copies with the fresh remnant unreachable, the break-even of the E13
campaign) must surface as a ``stale-read`` violation identifying the
victim reads by (processor, round, variable).  A checker that stays
green under that attack is vacuous.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.conformance.checker import ConsistencyChecker, ViolationReport
from repro.conformance.recorder import record
from repro.faults.attacks import build_stale_majority, payload_values
from repro.schemes import (
    GridScheme,
    MehlhornVishkinScheme,
    MemoryScheme,
    PPAdapter,
    SingleCopyScheme,
    UpfalWigdersonScheme,
)
from repro.workloads.generators import op_batches

__all__ = [
    "REPORT_BASENAME",
    "SchemeFuzzRow",
    "FuzzResult",
    "CanaryResult",
    "conformance_schemes",
    "fuzz_scheme",
    "run_fuzz",
    "stale_majority_canary",
    "render_markdown",
    "write_report",
]

REPORT_BASENAME = "conformance_fuzz"


def conformance_schemes() -> list[MemoryScheme]:
    """The six implementations under differential test: the four
    baseline organizations plus both deterministic PP constructions
    (q = 2 and q = 4), all behind the common protocol engine."""
    return [
        SingleCopyScheme(64, 512, hashed=True),
        MehlhornVishkinScheme(64, 512, c=3),
        UpfalWigdersonScheme(64, 512, c=2),
        GridScheme(63),
        PPAdapter(2, 3),
        PPAdapter(4, 3),
    ]


def _value_for(t: int, idx: np.ndarray) -> np.ndarray:
    """Deterministic write payloads: a function of (round, variable), so
    every scheme sees byte-identical values and any stale read is
    attributable to a specific earlier round."""
    return payload_values(t, idx)


@dataclass
class SchemeFuzzRow:
    """Differential verdict for one scheme over one workload."""

    scheme: str
    N: int
    M: int
    ops: int
    oracle_mismatches: int  # per-round read diffs vs the serial oracle
    final_mismatches: int  # final-sweep diffs vs the oracle's end state
    report: ViolationReport = field(default_factory=ViolationReport)

    @property
    def ok(self) -> bool:
        """Scheme is indistinguishable from serial memory."""
        return (
            self.oracle_mismatches == 0
            and self.final_mismatches == 0
            and self.report.ok
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (report nested)."""
        return {
            "scheme": self.scheme,
            "N": self.N,
            "M": self.M,
            "ops": self.ops,
            "oracle_mismatches": self.oracle_mismatches,
            "final_mismatches": self.final_mismatches,
            "ok": self.ok,
            "report": self.report.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SchemeFuzzRow":
        """Rehydrate a row from its :meth:`to_dict` form."""
        return cls(
            scheme=d["scheme"],
            N=int(d["N"]),
            M=int(d["M"]),
            ops=int(d["ops"]),
            oracle_mismatches=int(d["oracle_mismatches"]),
            final_mismatches=int(d["final_mismatches"]),
            report=ViolationReport.from_dict(d.get("report", {})),
        )


@dataclass
class FuzzResult:
    """Outcome of one differential fuzz run across the scheme set."""

    seed: int
    total_ops: int
    M: int  # common variable domain (min over schemes)
    rows: list[SchemeFuzzRow] = field(default_factory=list)
    engine: str = "vector"  # protocol engine every scheme ran under

    @property
    def ok(self) -> bool:
        """All schemes agreed with the serial oracle and the checker."""
        return all(r.ok for r in self.rows)

    def to_dict(self) -> dict:
        """JSON-serializable form (rows nested)."""
        return {
            "schema": 1,
            "seed": self.seed,
            "total_ops": self.total_ops,
            "M": self.M,
            "engine": self.engine,
            "ok": self.ok,
            "rows": [r.to_dict() for r in self.rows],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FuzzResult":
        """Rehydrate a result from its :meth:`to_dict` form."""
        return cls(
            seed=int(d["seed"]),
            total_ops=int(d["total_ops"]),
            M=int(d["M"]),
            rows=[SchemeFuzzRow.from_dict(r) for r in d.get("rows", [])],
            engine=str(d.get("engine", "vector")),
        )


def fuzz_scheme(
    scheme: MemoryScheme,
    plan: list[tuple[str, np.ndarray]],
    checker: ConsistencyChecker | None = None,
    trace_path: str | None = None,
    engine: str | None = None,
) -> SchemeFuzzRow:
    """Replay one batch plan through ``scheme``, diff against the serial
    oracle, and run the consistency checker over the recorded trace.

    Optionally persists the full JSONL trace to ``trace_path`` (done
    unconditionally, so a failing CI run leaves the evidence behind).
    ``engine`` selects the protocol executor for every access
    (:mod:`repro.core.engine`); the verdicts must not depend on it.
    """
    checker = checker or ConsistencyChecker()
    oracle: dict[int, int] = {}
    store = scheme.make_store()
    ops = 0
    oracle_mismatches = 0
    with record() as rec:
        t = 0
        for t, (kind, idx) in enumerate(plan, start=1):
            ops += idx.size
            if kind == "write":
                vals = _value_for(t, idx)
                scheme.write(idx, values=vals, store=store, time=t, engine=engine)
                for v, x in zip(idx, vals):
                    oracle[int(v)] = int(x)
            else:
                res = scheme.read(idx, store=store, time=t, engine=engine)
                want = np.array(
                    [oracle.get(int(v), -1) for v in idx], dtype=np.int64
                )
                oracle_mismatches += int(np.count_nonzero(res.values != want))
        # final sweep: every variable ever written, one last read batch
        final_mismatches = 0
        if oracle:
            sweep = np.array(sorted(oracle), dtype=np.int64)
            res = scheme.read(sweep, store=store, time=t + 1, engine=engine)
            want = np.array([oracle[int(v)] for v in sweep], dtype=np.int64)
            final_mismatches = int(np.count_nonzero(res.values != want))
            ops += sweep.size
    if trace_path is not None:
        rec.write_jsonl(trace_path)
    return SchemeFuzzRow(
        scheme=scheme.name,
        N=scheme.N,
        M=scheme.M,
        ops=ops,
        oracle_mismatches=oracle_mismatches,
        final_mismatches=final_mismatches,
        report=checker.check_mem_ops(rec.mem_ops()),
    )


def run_fuzz(
    seed: int = 0,
    total_ops: int = 2000,
    schemes: list[MemoryScheme] | None = None,
    trace_dir: str | None = None,
    max_batch: int = 32,
    engine: str | None = None,
) -> FuzzResult:
    """Differential fuzz: one workload, every scheme, three verdicts.

    The workload is drawn over the *smallest* variable domain in the
    scheme set so all schemes replay identical batches.  When
    ``trace_dir`` is given, each scheme's JSONL trace is written there
    (``trace_<scheme>.jsonl``) for post-mortem checking.
    """
    from repro.core.engine import resolve_engine

    schemes = schemes if schemes is not None else conformance_schemes()
    if not schemes:
        raise ValueError("need at least one scheme to fuzz")
    M = min(s.M for s in schemes)
    plan = op_batches(
        M, total_ops, seed=seed, max_batch=min(max_batch, M)
    )
    result = FuzzResult(
        seed=seed, total_ops=total_ops, M=M, engine=resolve_engine(engine)
    )
    for i, scheme in enumerate(schemes):
        trace_path = None
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            trace_path = os.path.join(
                trace_dir, f"trace_{i}_{scheme.name.replace(' ', '_')}.jsonl"
            )
        result.rows.append(
            fuzz_scheme(scheme, plan, trace_path=trace_path, engine=engine)
        )
    return result


@dataclass
class CanaryResult:
    """Outcome of the stale-majority self-test."""

    report: ViolationReport
    expected: list[tuple[int, int, int]]  # (processor, round, variable)
    silent_wrong_reads: int  # victim reads the protocol returned wrong

    @property
    def detected(self) -> bool:
        """The checker flagged every silently-wrong victim read as a
        ``stale-read`` at its exact (processor, round, variable)."""
        flagged = {
            (v.proc, v.round, int(v.var))
            for v in self.report.violations
            if v.kind == "stale-read"
        }
        return (
            self.silent_wrong_reads > 0
            and set(self.expected) <= flagged
        )


def stale_majority_canary(
    seed: int = 0, n_victims: int = 3, engine: str | None = None
) -> CanaryResult:
    """Force the one unmaskable fault and demand the checker sees it.

    On the q = 2 construction (3 copies, majority 2, tolerance 1): write
    old values at round 1 and fresh values at round 2, roll ``q/2 + 1``
    copies of each victim back to the old (value, stamp), and kill the
    fresh remnant's modules so the stale majority is the only reachable
    quorum.  The protocol then answers the round-3 read with the old
    value *without reporting a fault* -- the silent corruption the E13
    campaign pins just past the q/2 threshold.  The returned
    :class:`CanaryResult` says whether the checker flagged exactly those
    reads.

    The adversary itself lives in :mod:`repro.faults.attacks`; this
    wrapper records its trace and runs the *batch* checker over it (the
    online watchdog equivalent is
    :func:`repro.conformance.streaming.run_watchdog_canary`).
    """
    attack = build_stale_majority(seed=seed, n_victims=n_victims, engine=engine)
    with record() as rec:
        attack.seed_history()
        attack.go_stale()  # q/2 + 1 stale copies, fresh remnant cut
        res = attack.read(time=3)
    expected, silent_wrong = attack.victim_verdict(res, time=3)
    report = ConsistencyChecker().check_mem_ops(rec.mem_ops())
    return CanaryResult(
        report=report,
        expected=expected,
        silent_wrong_reads=silent_wrong,
    )


def render_markdown(result: FuzzResult) -> str:
    """The fuzz result as a markdown report."""
    lines = [
        "# Conformance differential fuzz",
        "",
        f"Workload: seed {result.seed}, >= {result.total_ops} operations "
        f"over M = {result.M} shared variables (common domain), replayed "
        f"identically through every scheme and a serial dict oracle "
        f"(protocol engine: {result.engine}).",
        "",
        "| scheme | N | M | ops | oracle diffs | final diffs | "
        "checker violations | verdict |",
        "|--------|---|---|-----|--------------|-------------|"
        "--------------------|---------|",
    ]
    for r in result.rows:
        lines.append(
            f"| {r.scheme} | {r.N} | {r.M} | {r.ops} | "
            f"{r.oracle_mismatches} | {r.final_mismatches} | "
            f"{r.report.n_violations} | {'PASS' if r.ok else 'FAIL'} |"
        )
    lines += ["", f"**Overall: {'PASS' if result.ok else 'FAIL'}**"]
    for r in result.rows:
        if not r.report.ok:
            lines += ["", f"## Violations: {r.scheme}", "", r.report.render()]
    return "\n".join(lines)


def write_report(result: FuzzResult, out_dir: str) -> tuple[str, str]:
    """Write ``conformance_fuzz.md`` + ``.json`` under ``out_dir``;
    returns (md_path, json_path)."""
    os.makedirs(out_dir, exist_ok=True)
    md_path = os.path.join(out_dir, REPORT_BASENAME + ".md")
    json_path = os.path.join(out_dir, REPORT_BASENAME + ".json")
    with open(md_path, "w") as fh:
        fh.write(render_markdown(result))
    with open(json_path, "w") as fh:
        json.dump(result.to_dict(), fh, indent=2)
    return md_path, json_path
