"""Per-operation memory trace recording for conformance checking.

The protocol engine emits one ``mem.op`` trace event per request of
every read/write batch (:func:`repro.core.protocol.run_access_protocol`
with ``var_ids`` threaded down by both scheme layers), and the parallel
KV store emits one ``kv.op`` event per key of every completed batch
operation -- both only while a recording tracer is installed, behind the
same single :func:`repro.obs.enabled` guard as the rest of the
observability layer, so a run without a tracer pays nothing.

:class:`TraceRecorder` is a :class:`~repro.obs.trace.RecordingTracer`
that knows how to project those events back out as typed operation
records (:class:`MemOp` / :class:`KvOp`) for the
:class:`~repro.conformance.checker.ConsistencyChecker`.  Because it *is*
a tracer, its JSONL output interleaves the memory operations with the
ordinary ``protocol.*`` / ``kvstore.*`` spans -- one file tells the
whole story, and :func:`load_mem_ops` recovers the operations from any
trace file written by any tracer.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import repro.obs as _obs
from repro.obs.trace import RecordingTracer, read_jsonl

__all__ = [
    "MEM_EVENT",
    "KV_EVENT",
    "MemOp",
    "KvOp",
    "TraceRecorder",
    "record",
    "mem_ops_from_events",
    "kv_ops_from_events",
    "load_mem_ops",
    "load_kv_ops",
]

#: trace-event name of a per-variable protocol operation
MEM_EVENT = "mem.op"
#: trace-event name of a per-key kvstore operation
KV_EVENT = "kv.op"


@dataclass(frozen=True)
class MemOp:
    """One recorded shared-memory operation (a single request of a batch).

    ``round`` is the batch's logical timestamp -- the total order the
    protocol arbitrates against; ``proc`` is the requesting position
    within the batch (the cluster member in charge of the variable);
    ``phase`` is the protocol phase that served it.  A ``lost`` read or
    write failed its quorum and was *reported* (its value is invalid by
    contract, not silently wrong).
    """

    op: str
    var: int
    value: int
    round: int
    proc: int
    phase: int
    lost: bool
    seq: int

    @property
    def where(self) -> tuple[int, int, int]:
        """The (processor, round, variable) identity of this operation."""
        return (self.proc, self.round, self.var)


@dataclass(frozen=True)
class KvOp:
    """One recorded key-value store operation (a single key of a batch)."""

    op: str
    key: str
    value: int
    round: int
    seq: int


def mem_ops_from_events(events) -> list[MemOp]:
    """Project the ``mem.op`` events of a trace into :class:`MemOp`
    records (other events pass through untouched)."""
    out: list[MemOp] = []
    for e in events:
        if e.get("name") != MEM_EVENT:
            continue
        out.append(
            MemOp(
                op=e["op"],
                var=int(e["var"]),
                value=int(e["value"]),
                round=int(e["round"]),
                proc=int(e["proc"]),
                phase=int(e.get("phase", 0)),
                lost=bool(e.get("lost", False)),
                seq=int(e["seq"]),
            )
        )
    return out


def kv_ops_from_events(events) -> list[KvOp]:
    """Project the ``kv.op`` events of a trace into :class:`KvOp` records."""
    return [
        KvOp(
            op=e["op"],
            key=str(e["key"]),
            value=int(e["value"]),
            round=int(e["round"]),
            seq=int(e["seq"]),
        )
        for e in events
        if e.get("name") == KV_EVENT
    ]


def load_mem_ops(path: str) -> list[MemOp]:
    """Memory operations of a JSONL trace file (any tracer's output)."""
    return mem_ops_from_events(read_jsonl(path))


def load_kv_ops(path: str) -> list[KvOp]:
    """KV operations of a JSONL trace file."""
    return kv_ops_from_events(read_jsonl(path))


class TraceRecorder(RecordingTracer):
    """A recording tracer specialized for memory-conformance traces.

    Use :func:`record` (or install via :func:`repro.obs.set_tracer`)
    around the accesses under test, then hand :meth:`mem_ops` /
    :meth:`kv_ops` to the checker, or persist everything with the
    inherited :meth:`~repro.obs.trace.RecordingTracer.write_jsonl`.
    """

    def mem_ops(self) -> list[MemOp]:
        """All memory operations recorded so far, in emit order."""
        return mem_ops_from_events(self.events)

    def kv_ops(self) -> list[KvOp]:
        """All kvstore operations recorded so far, in emit order."""
        return kv_ops_from_events(self.events)

    def n_mem_ops(self) -> int:
        """Count of recorded ``mem.op`` events (cheap, no projection)."""
        return sum(1 for e in self.events if e.get("name") == MEM_EVENT)

    def __repr__(self) -> str:
        return (
            f"TraceRecorder({len(self.events)} events, "
            f"{self.n_mem_ops()} mem ops)"
        )


@contextmanager
def record():
    """Install a fresh :class:`TraceRecorder` for a block.

    Yields the recorder; the previously installed tracer (usually the
    no-op default) is restored on exit::

        with record() as rec:
            scheme.write(idx, values=vals, store=store, time=1)
            scheme.read(idx, store=store, time=2)
        report = ConsistencyChecker().check_mem_ops(rec.mem_ops())
    """
    rec = TraceRecorder()
    prev = _obs.set_tracer(rec)
    try:
        yield rec
    finally:
        _obs.set_tracer(prev if prev.enabled else None)
