"""Trace-based PRAM-consistency checking of recorded memory operations.

The paper's Theorem on majority-rule semantics promises that replicated
memory is indistinguishable from a single serial memory.  For the
batched MPC model that contract specializes to *sequential consistency
per variable* over the recorded trace (the per-process discipline of
Wei et al.'s PRAM-trace verification, collapsed by the model's total
round order):

* operations are totally ordered by ``(round, writes-before-reads,
  seq)`` -- every batch carries one strictly-increasing logical
  timestamp, so the protocol's arbitration order is recoverable from
  the trace alone;
* a read of variable ``v`` must return the value of the *winning* write
  to ``v`` with the largest round not after the read's round, or ``-1``
  when ``v`` was never written;
* two writes to ``v`` in the same round are arbitrated exactly like the
  protocol arbitrates copies: freshest timestamp first, then largest
  value -- the ``(stamp << 32) | value`` packing order of
  :func:`repro.core.protocol.run_access_protocol`, which is what the
  module-level policies of :mod:`repro.mpc.arbitration` funnel into;
* an operation flagged ``lost`` failed its quorum and was *reported*:
  its value is invalid by contract.  A lost **write** leaves the
  variable indeterminate (some copies may carry the new stamp), so
  until the next successful write a read may legitimately return either
  the old or the attempted value -- the checker tracks that taint set
  instead of guessing;
* every other divergence is a violation, classified as ``stale-read``
  (an older write's value -- the silent failure mode a stale majority
  produces), ``dropped-read`` (written state read back as empty) or
  ``phantom-read`` (a value never written to that variable).

Violations identify the offending operation by (processor, round,
variable) and the report is machine-readable
(:meth:`ViolationReport.to_dict`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable

from repro.conformance.recorder import (
    KvOp,
    MemOp,
    kv_ops_from_events,
    mem_ops_from_events,
)

__all__ = [
    "Violation",
    "ViolationReport",
    "ConsistencyChecker",
    "MemOpCore",
    "KvOpCore",
]


@dataclass(frozen=True)
class Violation:
    """One consistency violation, anchored to the offending operation."""

    kind: str
    var: str
    round: int
    proc: int
    expected: int
    observed: int

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.kind}: processor {self.proc}, round {self.round}, "
            f"variable {self.var}: expected {self.expected}, "
            f"read {self.observed}"
        )


@dataclass
class ViolationReport:
    """Machine-readable outcome of one checker pass."""

    violations: list[Violation] = field(default_factory=list)
    reads_checked: int = 0
    writes_seen: int = 0
    lost_exempt: int = 0
    tainted_accepted: int = 0
    kv_checked: int = 0
    truncated: int = 0  # violations beyond the cap, not listed

    @property
    def ok(self) -> bool:
        """True iff the trace is consistent."""
        return not self.violations and not self.truncated

    @property
    def n_violations(self) -> int:
        """Total violations observed (listed + truncated)."""
        return len(self.violations) + self.truncated

    def merge(self, other: "ViolationReport") -> "ViolationReport":
        """Fold another report into this one (returns self)."""
        self.violations.extend(other.violations)
        self.reads_checked += other.reads_checked
        self.writes_seen += other.writes_seen
        self.lost_exempt += other.lost_exempt
        self.tainted_accepted += other.tainted_accepted
        self.kv_checked += other.kv_checked
        self.truncated += other.truncated
        return self

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "schema": 1,
            "ok": self.ok,
            "reads_checked": self.reads_checked,
            "writes_seen": self.writes_seen,
            "lost_exempt": self.lost_exempt,
            "tainted_accepted": self.tainted_accepted,
            "kv_checked": self.kv_checked,
            "truncated": self.truncated,
            "violations": [asdict(v) for v in self.violations],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ViolationReport":
        """Rehydrate a report from its :meth:`to_dict` form."""
        return cls(
            violations=[Violation(**v) for v in d.get("violations", [])],
            reads_checked=int(d.get("reads_checked", 0)),
            writes_seen=int(d.get("writes_seen", 0)),
            lost_exempt=int(d.get("lost_exempt", 0)),
            tainted_accepted=int(d.get("tainted_accepted", 0)),
            kv_checked=int(d.get("kv_checked", 0)),
            truncated=int(d.get("truncated", 0)),
        )

    def render(self) -> str:
        """The report as markdown (verdict line + violations table)."""
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"**Consistency: {verdict}** -- {self.n_violations} "
            f"violation(s) over {self.reads_checked} checked read(s), "
            f"{self.writes_seen} write(s), {self.kv_checked} kv op(s); "
            f"{self.lost_exempt} lost op(s) exempt.",
        ]
        if self.violations:
            lines += [
                "",
                "| kind | processor | round | variable | expected | observed |",
                "|------|-----------|-------|----------|----------|----------|",
            ]
            for v in self.violations:
                lines.append(
                    f"| {v.kind} | {v.proc} | {v.round} | {v.var} | "
                    f"{v.expected} | {v.observed} |"
                )
            if self.truncated:
                lines.append(f"| ... {self.truncated} more ... | | | | | |")
        return "\n".join(lines)


#: reads sort after writes within a round: a batch's timestamp is the
#: order its writes become visible in
_OP_RANK = {"write": 0, "read": 1}


class MemOpCore:
    """Incremental serial-memory-per-variable verifier.

    Feed :class:`~repro.conformance.recorder.MemOp` records **in
    arbitration order** -- sorted by ``(round, writes-before-reads,
    seq)`` -- and each call classifies the operation immediately.  The
    batch :class:`ConsistencyChecker` sorts a whole trace and feeds it
    through one core; the streaming checker
    (:mod:`repro.conformance.streaming`) feeds closed round-windows and
    calls :meth:`retire` so retained state stays bounded.

    State per variable: the current winning write (kept for the
    variable's lifetime), the set of past written values with their last
    write round (prunable -- it only classifies stale vs phantom), and
    the post-lost-write taint set (cleared by the next successful
    write).
    """

    def __init__(
        self,
        max_violations: int = 100,
        on_violation: "Callable[[Violation], None] | None" = None,
    ):
        if max_violations < 1:
            raise ValueError("max_violations must be >= 1")
        self.max_violations = max_violations
        self.on_violation = on_violation
        self.report = ViolationReport()
        self._cur: dict[int, tuple[int, int]] = {}  # var -> (round, value)
        self._past: dict[int, dict[int, int]] = {}  # var -> value -> round
        self._taint: dict[int, set[int]] = {}  # var -> acceptable values

    def feed(self, o: MemOp) -> Violation | None:
        """Classify one operation; returns the violation, if any."""
        rep = self.report
        if o.op == "write":
            rep.writes_seen += 1
            self._past.setdefault(o.var, {})[o.value] = o.round
            if o.lost:
                # indeterminate: old winner and attempted value both
                # acceptable until the next successful write
                have = self._cur.get(o.var)
                self._taint.setdefault(o.var, set()).update(
                    {have[1] if have else -1, o.value}
                )
                rep.lost_exempt += 1
                return None
            self._taint.pop(o.var, None)
            have = self._cur.get(o.var)
            if (
                have is None
                or o.round > have[0]
                # same-round arbitration: larger value wins, the
                # protocol's (stamp << 32) | value packing order
                or (o.round == have[0] and o.value > have[1])
            ):
                self._cur[o.var] = (o.round, o.value)
            return None
        # -- read ----------------------------------------------------
        if o.lost:
            rep.lost_exempt += 1
            return None
        rep.reads_checked += 1
        have = self._cur.get(o.var)
        expected = have[1] if have is not None else -1
        if o.value == expected:
            return None
        accept = self._taint.get(o.var)
        if accept is not None and o.value in accept:
            rep.tainted_accepted += 1
            return None
        if expected == -1:
            kind = "phantom-read"
        elif o.value == -1:
            kind = "dropped-read"
        elif o.value in self._past.get(o.var, ()):
            kind = "stale-read"
        else:
            kind = "phantom-read"
        v = Violation(
            kind=kind, var=str(o.var), round=o.round, proc=o.proc,
            expected=expected, observed=o.value,
        )
        self._record(v)
        return v

    def retire(self, horizon: int) -> None:
        """Drop past-value entries last written before round ``horizon``.

        The current winner and the taint set survive (they define
        correctness, not classification), so retiring only narrows the
        stale-vs-phantom distinction for reads that reach back further
        than the caller's window -- never the violation/no-violation
        verdict itself.
        """
        for var in list(self._past):
            vals = self._past[var]
            keep = {v: r for v, r in vals.items() if r >= horizon}
            winner = self._cur.get(var)
            if winner is not None and winner[1] not in keep:
                keep[winner[1]] = winner[0]
            if keep:
                self._past[var] = keep
            else:
                del self._past[var]

    @property
    def state_size(self) -> int:
        """Retained entries across all per-variable structures."""
        return (
            len(self._cur)
            + sum(len(v) for v in self._past.values())
            + sum(len(v) for v in self._taint.values())
        )

    def _record(self, v: Violation) -> None:
        rep = self.report
        if len(rep.violations) < self.max_violations:
            rep.violations.append(v)
        else:
            rep.truncated += 1
        if self.on_violation is not None:
            self.on_violation(v)


class KvOpCore:
    """Incremental dict-semantics verifier for ``kv.op`` streams.

    Feed :class:`~repro.conformance.recorder.KvOp` records sorted by
    ``(round, seq)``.  State is the live key->value model -- already
    O(live keys), so :meth:`retire` exists only for interface symmetry.
    """

    def __init__(
        self,
        max_violations: int = 100,
        on_violation: "Callable[[Violation], None] | None" = None,
    ):
        if max_violations < 1:
            raise ValueError("max_violations must be >= 1")
        self.max_violations = max_violations
        self.on_violation = on_violation
        self.report = ViolationReport()
        self._model: dict[str, int] = {}

    def feed(self, o: KvOp) -> Violation | None:
        """Apply one kv operation to the model; returns any violation."""
        rep = self.report
        rep.kv_checked += 1
        if o.op == "put":
            self._model[o.key] = o.value
            return None
        if o.op == "delete":
            self._model.pop(o.key, None)
            return None
        expected = self._model.get(o.key, -1)
        if o.value == expected:
            return None
        kind = "kv-stale-get" if expected != -1 else "kv-phantom-get"
        v = Violation(
            kind=kind, var=o.key, round=o.round, proc=-1,
            expected=expected, observed=o.value,
        )
        if len(rep.violations) < self.max_violations:
            rep.violations.append(v)
        else:
            rep.truncated += 1
        if self.on_violation is not None:
            self.on_violation(v)
        return v

    def retire(self, horizon: int) -> None:
        """No-op: the kv model is already bounded by live keys."""

    @property
    def state_size(self) -> int:
        """Live keys in the model."""
        return len(self._model)


class ConsistencyChecker:
    """Verify recorded traces against serial-memory-per-variable semantics.

    Parameters
    ----------
    max_violations:
        Cap on *listed* violations (the total is still counted), so a
        completely broken trace yields a bounded report.
    """

    def __init__(self, max_violations: int = 100):
        if max_violations < 1:
            raise ValueError("max_violations must be >= 1")
        self.max_violations = max_violations

    # -- shared-memory trace -----------------------------------------------

    def check_mem_ops(self, ops: list[MemOp]) -> ViolationReport:
        """Check a sequence of :class:`MemOp` records (any order; the
        trace's round/seq fields define the arbitration order)."""
        core = MemOpCore(max_violations=self.max_violations)
        for o in sorted(ops, key=lambda o: (o.round, _OP_RANK[o.op], o.seq)):
            core.feed(o)
        return core.report

    # -- kv trace ----------------------------------------------------------

    def check_kv_ops(self, ops: list[KvOp]) -> ViolationReport:
        """Check a kvstore trace against plain dict semantics."""
        core = KvOpCore(max_violations=self.max_violations)
        for o in sorted(ops, key=lambda o: (o.round, o.seq)):
            core.feed(o)
        return core.report

    # -- whole trace -------------------------------------------------------

    def check_events(self, events) -> ViolationReport:
        """Check every discipline a trace carries (``mem.op`` events
        against serial memory, ``kv.op`` events against a dict)."""
        rep = self.check_mem_ops(mem_ops_from_events(events))
        return rep.merge(self.check_kv_ops(kv_ops_from_events(events)))
