"""Trace-based conformance checking of the replicated-memory stack.

The paper's contract is behavioral: a PRAM program cannot tell the
replicated, majority-arbitrated memory from a single serial memory.
This package turns that contract into an executable oracle:

* :mod:`repro.conformance.recorder` -- captures per-operation
  ``mem.op`` / ``kv.op`` trace events (emitted by the protocol engine
  and the KV store behind the observability switchboard) as typed
  records and JSONL files;
* :mod:`repro.conformance.checker` -- verifies a trace against
  serial-memory-per-variable (PRAM) semantics, with machine-readable
  violation reports anchored to (processor, round, variable);
* :mod:`repro.conformance.differential` -- replays one seeded workload
  through all memory-organization schemes plus a plain-dict oracle and
  diffs reads, final state, and traces; includes the stale-majority
  canary that proves the checker can catch the one fault the protocol
  cannot mask;
* :mod:`repro.conformance.streaming` -- the same checker semantics
  incrementally, fed live from the :mod:`repro.obs` event bus with a
  bounded round-window (:class:`StreamingChecker`), plus the
  :class:`Watchdog` that couples it to rolling health telemetry and an
  online version of the stale-majority canary that must flag the
  attack *mid-run*.

CLI: ``repro conform fuzz | check | report`` (exit 1 on violations),
``repro watch fuzz | attack`` for the live watchdog.
"""

from repro.conformance.checker import (
    ConsistencyChecker,
    KvOpCore,
    MemOpCore,
    Violation,
    ViolationReport,
)
from repro.conformance.differential import (
    CanaryResult,
    FuzzResult,
    SchemeFuzzRow,
    conformance_schemes,
    fuzz_scheme,
    run_fuzz,
    stale_majority_canary,
)
from repro.conformance.recorder import (
    KvOp,
    MemOp,
    TraceRecorder,
    load_kv_ops,
    load_mem_ops,
    record,
)
from repro.conformance.streaming import (
    SCHEME_KEYS,
    HealthSnapshot,
    OnlineCanaryResult,
    StreamFuzzResult,
    StreamingChecker,
    Watchdog,
    run_watchdog_canary,
    scheme_by_key,
    stream_fuzz,
)

__all__ = [
    "ConsistencyChecker",
    "KvOpCore",
    "MemOpCore",
    "Violation",
    "ViolationReport",
    "CanaryResult",
    "FuzzResult",
    "SchemeFuzzRow",
    "conformance_schemes",
    "fuzz_scheme",
    "run_fuzz",
    "stale_majority_canary",
    "KvOp",
    "MemOp",
    "TraceRecorder",
    "load_kv_ops",
    "load_mem_ops",
    "record",
    "SCHEME_KEYS",
    "HealthSnapshot",
    "OnlineCanaryResult",
    "StreamFuzzResult",
    "StreamingChecker",
    "Watchdog",
    "run_watchdog_canary",
    "scheme_by_key",
    "stream_fuzz",
]
