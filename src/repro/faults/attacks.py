"""Scripted end-to-end attacks built from the fault-model primitives.

:mod:`repro.faults.models` provides declarative per-batch fault plans;
this module packages the full *timeline* of the one attack the majority
protocol provably cannot mask -- the ``q/2 + 1`` stale-majority
rollback -- as a reusable object, so the batch conformance canary
(:func:`repro.conformance.differential.stale_majority_canary`) and the
online watchdog canary
(:func:`repro.conformance.streaming.run_watchdog_canary`) script the
identical adversary instead of each re-deriving it.

The timeline: seed two rounds of history (old values at round 1, fresh
at round 2), roll ``k`` copies of each victim back to the old (value,
stamp), unplug one side of the copy map, and keep accessing.  With
``k = q/2 + 1`` and the fresh remnant unreachable the protocol answers
reads with the stale value *without reporting a fault* -- silent
corruption.  With ``k <= q/2`` (or the stale side unplugged) every read
quorum still intersects the fresh set and the run merely degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, schemes import lazily
    from repro.core.protocol import AccessResult
    from repro.schemes.base import MemoryScheme

from repro.faults.models import FaultContext, StaleCopies, disjoint_victims

__all__ = ["payload_values", "StaleMajorityAttack", "build_stale_majority"]

#: payloads stay well under the protocol's 32-bit value packing limit
_VAL_MOD = 1 << 20


def payload_values(t: int, idx: np.ndarray) -> np.ndarray:
    """Deterministic write payloads: a function of (round, variable), so
    every scheme sees byte-identical values and any stale read is
    attributable to a specific earlier round."""
    return (np.asarray(idx, dtype=np.int64) * 2654435761 + t * 97) % _VAL_MOD


@dataclass
class StaleMajorityAttack:
    """One scripted stale-majority adversary bound to a scheme + store.

    Drive it in order: :meth:`seed_history`, :meth:`go_stale`,
    :meth:`read` (the poisoned round), then optionally
    :meth:`write_tail` to keep the run alive (the online canary needs
    rounds to pass so the window closes mid-run).
    """

    scheme: object
    idx: np.ndarray
    modules: np.ndarray
    slots: np.ndarray
    ctx: FaultContext
    victims: np.ndarray
    old_values: np.ndarray
    fresh_values: np.ndarray
    store: object
    retry_limit: int
    seed: int = 0
    #: modules unplugged by :meth:`go_stale` (None while healthy)
    failed_modules: np.ndarray | None = field(default=None)
    #: stale copies per victim applied by :meth:`go_stale`
    stale_k: int = 0
    #: protocol engine for every access the attack issues
    #: (None = the default; see :mod:`repro.core.engine`)
    engine: str | None = None

    def seed_history(self) -> None:
        """Write old values at round 1 and fresh values at round 2.

        The quorum writes are the recorded history; replaying them onto
        every copy cell (same values, same stamps) makes the rollback
        below deterministic without changing the semantics.
        """
        self.scheme.write(
            self.idx, values=self.old_values, store=self.store, time=1,
            engine=self.engine,
        )
        self.scheme.write(
            self.idx, values=self.fresh_values, store=self.store, time=2,
            engine=self.engine,
        )
        self.store.write(
            self.modules,
            self.slots,
            np.broadcast_to(self.old_values[:, None], self.modules.shape),
            1,
        )
        self.store.write(
            self.modules,
            self.slots,
            np.broadcast_to(self.fresh_values[:, None], self.modules.shape),
            2,
        )

    def go_stale(
        self, k: int | None = None, cut: str = "auto"
    ) -> np.ndarray:
        """Roll ``k`` copies of each victim back and unplug one side.

        ``k`` defaults to ``q/2 + 1`` (just past the break-even).
        ``cut`` picks which modules fail: ``"fresh"`` kills the fresh
        remnant (the stale majority is the only reachable quorum --
        silent corruption), ``"stale"`` kills the stale cells' modules
        (the fresh majority answers -- a degraded but correct run);
        ``"auto"`` chooses by whether ``k`` exceeds the tolerance.
        Returns the failed module ids.
        """
        if k is None:
            k = self.ctx.tolerance + 1
        if cut == "auto":
            cut = "fresh" if k > self.ctx.tolerance else "stale"
        if cut not in ("fresh", "stale"):
            raise ValueError(f"cut must be 'fresh', 'stale' or 'auto', not {cut!r}")
        plan = StaleCopies(copies_per_victim=k, victims=self.victims).plan(
            self.ctx, 1.0, seed=self.seed
        )
        StaleCopies.apply(plan, self.store, self.ctx, self.old_values, 1)
        stale_cols = plan.stale[1].reshape(self.victims.size, -1)
        mods: list[np.ndarray] = []
        for i, v in enumerate(self.victims):
            if cut == "fresh":
                cols = np.setdiff1d(
                    np.arange(self.ctx.copies), stale_cols[i]
                )
            else:
                cols = stale_cols[i]
            mods.append(self.modules[int(v), cols])
        self.failed_modules = np.unique(np.concatenate(mods)).astype(np.int64)
        self.stale_k = k
        return self.failed_modules

    def _fault_kwargs(self) -> dict:
        kw: dict = {"engine": self.engine}
        if self.failed_modules is not None and self.failed_modules.size:
            kw.update(
                failed_modules=self.failed_modules,
                allow_partial=True,
                retry_limit=self.retry_limit,
            )
        return kw

    def read(self, time: int = 3) -> "AccessResult":
        """One read batch of every attacked variable at ``time``."""
        return self.scheme.read(
            self.idx, store=self.store, time=time, **self._fault_kwargs()
        )

    def write_tail(self, time: int, values: np.ndarray) -> "AccessResult":
        """One follow-up write batch (keeps the logical clock moving)."""
        return self.scheme.write(
            self.idx,
            values=values,
            store=self.store,
            time=time,
            **self._fault_kwargs(),
        )

    def victim_verdict(
        self, res: "AccessResult", time: int = 3
    ) -> tuple[list[tuple[int, int, int]], int]:
        """Which reads came back silently wrong.

        Returns ``(expected, silent_wrong)``: the (processor, round,
        variable) identities a checker must flag, and their count.
        Reads the protocol itself *reported* lost are excluded -- those
        are honest failures, not silent corruption.
        """
        lost = np.zeros(self.idx.size, dtype=bool)
        if res.unsatisfiable is not None:
            lost[res.unsatisfiable] = True
        silent_wrong = (~lost) & (res.values != self.fresh_values)
        expected = [
            (int(p), time, int(self.idx[int(p)]))
            for p in np.flatnonzero(silent_wrong)
        ]
        return expected, int(np.count_nonzero(silent_wrong))


def build_stale_majority(
    seed: int = 0,
    n_victims: int = 3,
    scheme: "MemoryScheme | None" = None,
    engine: str | None = None,
) -> StaleMajorityAttack:
    """Construct the attack on a fresh scheme + store.

    Defaults to the q = 2 construction (3 copies, majority 2, tolerance
    1) -- the smallest instance where ``q/2 + 1`` stale copies form a
    majority.
    """
    if scheme is None:
        from repro.schemes import PPAdapter

        scheme = PPAdapter(2, 3)
    count = min(scheme.N, scheme.M, 48)
    idx = scheme.random_request_set(count, seed=seed)
    modules = scheme.placement(idx)
    slots = scheme.slots(idx, modules)
    ctx = FaultContext(scheme.N, modules, scheme.read_quorum, slots=slots)
    victims = disjoint_victims(modules, n_victims)
    return StaleMajorityAttack(
        scheme=scheme,
        idx=idx,
        modules=modules,
        slots=slots,
        ctx=ctx,
        victims=victims,
        old_values=payload_values(1, idx),
        fresh_values=payload_values(2, idx),
        store=scheme.make_store(),
        retry_limit=64 * (count + ctx.copies),
        seed=seed,
        engine=engine,
    )
