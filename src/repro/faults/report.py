"""Degraded-mode vocabulary: per-variable fault outcomes of an access.

When an access runs with faults injected (failed modules, grey modules,
bounded retry), the protocol classifies every requested variable:

* **satisfied** -- quorum reached, no copy of the variable was affected;
* **degraded**  -- quorum reached, but at least one copy sat in a failed
  or grey module (the variable survived on its remaining copies);
* **lost**      -- the quorum ``q/2 + 1`` was unreachable (too many dead
  copies, or the bounded retry budget ran out), the paper's break-even
  point at ``q/2 + 1`` unavailable copies.

The classification ships as a :class:`FaultReport` on
:class:`~repro.core.protocol.AccessResult.fault_report`; layers that
cannot tolerate partial answers (the kvstore's hash probing, where a
missing cell is indistinguishable from an empty one) raise
:class:`QuorumLostError` instead of returning silently wrong data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SATISFIED",
    "DEGRADED",
    "LOST",
    "OUTCOME_NAMES",
    "FaultReport",
    "QuorumLostError",
]

#: outcome code: quorum reached with no fault-affected copy
SATISFIED = 0
#: outcome code: quorum reached despite dead/grey copies
DEGRADED = 1
#: outcome code: quorum unreachable (reported, never looped on)
LOST = 2

#: printable names indexed by outcome code
OUTCOME_NAMES = ("satisfied", "degraded", "lost")


class QuorumLostError(RuntimeError):
    """Raised by layers that must not serve partial results when some
    variable's majority quorum is unreachable under the injected faults.

    Attributes
    ----------
    variables:
        int64 array of the shared-variable ids that lost their quorum.
    modules:
        int64 array of the module ids implicated in the loss.
    """

    def __init__(
        self,
        message: str,
        variables: np.ndarray | None = None,
        modules: np.ndarray | None = None,
    ):
        super().__init__(message)
        self.variables = (
            np.asarray(variables, dtype=np.int64)
            if variables is not None
            else np.empty(0, dtype=np.int64)
        )
        self.modules = (
            np.asarray(modules, dtype=np.int64)
            if modules is not None
            else np.empty(0, dtype=np.int64)
        )


@dataclass
class FaultReport:
    """Per-variable outcome of one access run under injected faults.

    Arrays are aligned with the request batch (position ``i`` describes
    the i-th requested variable).
    """

    #: (V,) int8 of SATISFIED / DEGRADED / LOST codes
    outcomes: np.ndarray
    #: (V,) number of copies sitting in failed (never-serving) modules
    dead_copies: np.ndarray
    #: (V,) number of copies sitting in grey (slow-serving) modules
    grey_copies: np.ndarray
    #: (V,) 1-based phase iteration at which the quorum was reached
    #: (-1 for lost variables)
    satisfied_at: np.ndarray
    #: sorted unique ids of the faulty modules that host copies of any
    #: degraded or lost variable
    implicated_modules: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: the bounded-retry budget the run was given (None = unbounded)
    retry_limit: int | None = None
    #: iteration overhead vs a fault-free twin run (set by callers that
    #: ran one, e.g. the campaign; None when no baseline was measured)
    extra_iterations: int | None = None

    @property
    def n_satisfied(self) -> int:
        """Variables that reached quorum untouched by any fault."""
        return int(np.count_nonzero(self.outcomes == SATISFIED))

    @property
    def n_degraded(self) -> int:
        """Variables that reached quorum on their surviving copies."""
        return int(np.count_nonzero(self.outcomes == DEGRADED))

    @property
    def n_lost(self) -> int:
        """Variables whose quorum was unreachable."""
        return int(np.count_nonzero(self.outcomes == LOST))

    @property
    def lost_variables(self) -> np.ndarray:
        """Batch positions of the lost variables."""
        return np.nonzero(self.outcomes == LOST)[0].astype(np.int64)

    @property
    def degraded_variables(self) -> np.ndarray:
        """Batch positions of the degraded variables."""
        return np.nonzero(self.outcomes == DEGRADED)[0].astype(np.int64)

    @property
    def ok(self) -> bool:
        """True iff every variable reached its quorum."""
        return self.n_lost == 0

    def with_baseline(self, baseline_total_iterations: int, total_iterations: int) -> "FaultReport":
        """Record the iteration overhead against a fault-free twin run."""
        self.extra_iterations = int(total_iterations) - int(baseline_total_iterations)
        return self

    def summary(self) -> dict:
        """Compact dict for tables / JSON reports."""
        return {
            "satisfied": self.n_satisfied,
            "degraded": self.n_degraded,
            "lost": self.n_lost,
            "implicated_modules": int(self.implicated_modules.size),
            "retry_limit": self.retry_limit,
            "extra_iterations": self.extra_iterations,
        }

    def render(self) -> str:
        """One-line human-readable summary."""
        extra = (
            f", +{self.extra_iterations} iterations"
            if self.extra_iterations is not None
            else ""
        )
        return (
            f"{self.n_satisfied} satisfied / {self.n_degraded} degraded / "
            f"{self.n_lost} lost across {self.outcomes.size} variables "
            f"({self.implicated_modules.size} modules implicated{extra})"
        )
