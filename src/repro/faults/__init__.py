"""Fault injection: adversarial models, degraded-mode reports, campaigns.

The paper's majority-quorum discipline (``q + 1`` copies, quorum
``q/2 + 1``) tolerates exactly ``q/2`` unavailable or stale copies per
variable.  This package turns that claim into testable machinery:

* :mod:`repro.faults.models` -- fault models over the copy map
  ``G(V, U; E)``: random/transient crashes, targeted exact-``k`` copy
  kills, grey (slow) modules, stale-timestamp copies.
* :mod:`repro.faults.report` -- the degraded-mode vocabulary the
  protocol reports with: per-variable satisfied/degraded/lost outcomes
  (:class:`FaultReport`) and :class:`QuorumLostError`.
* :mod:`repro.faults.campaign` -- the campaign runner sweeping fault
  intensity and pinning the sharp q/2 threshold (``repro faults
  campaign`` CLI); imported lazily because it pulls in the scheme
  layer.

``FaultSchedule`` (evolving failures with exact repair lag) is
re-exported from :mod:`repro.mpc.faults` for convenience.
"""

from __future__ import annotations

from repro.faults.models import (
    MODEL_NAMES,
    FaultContext,
    FaultModel,
    FaultPlan,
    GreyModules,
    RandomCrashes,
    StaleCopies,
    TargetedAttack,
    default_models,
    disjoint_victims,
    make_model,
)
from repro.faults.report import (
    DEGRADED,
    LOST,
    OUTCOME_NAMES,
    SATISFIED,
    FaultReport,
    QuorumLostError,
)
from repro.mpc.faults import FaultSchedule

__all__ = [
    "FaultContext",
    "FaultPlan",
    "FaultModel",
    "RandomCrashes",
    "TargetedAttack",
    "GreyModules",
    "StaleCopies",
    "FaultSchedule",
    "disjoint_victims",
    "default_models",
    "make_model",
    "MODEL_NAMES",
    "FaultReport",
    "QuorumLostError",
    "SATISFIED",
    "DEGRADED",
    "LOST",
    "OUTCOME_NAMES",
    # lazy campaign surface
    "CampaignResult",
    "ThresholdRow",
    "ScenarioRow",
    "harness_for_q",
    "threshold_experiment",
    "run_campaign",
    "render_markdown",
    "write_report",
]

#: campaign symbols resolved lazily (campaign imports the scheme layer,
#: which imports the protocol, which imports repro.faults.report -- the
#: lazy hop keeps that chain acyclic)
_CAMPAIGN_SYMBOLS = frozenset(
    {
        "CampaignResult",
        "ThresholdRow",
        "ScenarioRow",
        "harness_for_q",
        "threshold_experiment",
        "run_campaign",
        "render_markdown",
        "write_report",
    }
)


def __getattr__(name: str):
    """Lazy re-export of the campaign module's public surface."""
    if name in _CAMPAIGN_SYMBOLS:
        from repro.faults import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
