"""Fault-injection campaigns: sweep fault intensity, pin the q/2 threshold.

The paper's implicit robustness claim: every access touches a majority
``q/2 + 1`` of the ``q + 1`` copies and reads trust the freshest
timestamp, so memory semantics survive **up to q/2 unavailable or
stale copies per variable** and break at ``q/2 + 1``.  The campaign
makes that claim measurable:

* :func:`threshold_experiment` runs the adversarial ladder for one
  ``q``: kill (or roll back to stale) *exactly* ``k`` copies of
  pairwise-disjoint victim variables for ``k = 0 .. q/2 + 1`` and check
  the threshold is sharp -- zero semantic violations up to ``q/2``,
  every victim lost (killed ladder) or served stale data (stale ladder
  with the fresh remnant killed) at ``q/2 + 1``.
* :func:`run_campaign` adds intensity sweeps of every fault model
  (random/transient crashes, targeted attacks, grey modules, stale
  copies) on top of the threshold ladders, verifying the **invariant**
  on every run: a variable with at most ``q/2`` faulty copies is always
  satisfied and always reads the latest completed write; variables
  beyond the threshold may be *lost* (reported, never hung on) but a
  silent wrong read below the threshold is a violation.

Staleness is measured against a fully propagated write (all ``q + 1``
copies stamped) before the adversary rolls copies back: if the write
only reached a minimal quorum, rolling back even one of *those* copies
is indistinguishable from ``q/2 + 1`` stale copies -- the intersection
argument counts faulty copies against the whole copy set.

Campaign runs emit ``faults.campaign`` / ``faults.scenario`` obs spans
and ``faults.*`` metrics, and render a markdown + JSON report for
``benchmarks/results/`` via :func:`write_report` (surfaced by the
``repro faults campaign | report`` CLI).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

import repro.obs as _obs
from repro.faults.models import (
    FaultContext,
    FaultModel,
    StaleCopies,
    TargetedAttack,
    default_models,
    disjoint_victims,
)

__all__ = [
    "ThresholdRow",
    "ScenarioRow",
    "CampaignResult",
    "harness_for_q",
    "threshold_experiment",
    "run_campaign",
    "render_markdown",
    "write_report",
    "REPORT_BASENAME",
]

#: report files are ``<basename>.md`` / ``<basename>.json``
REPORT_BASENAME = "faults_campaign"

#: value modulus keeping campaign payloads inside the packed 32-bit range
_VAL_MOD = 1 << 20


@dataclass
class ThresholdRow:
    """One rung of the adversarial ladder for one (q, attack kind)."""

    q: int
    attack: str  # 'killed' or 'stale'
    k: int  # copies attacked per victim
    n_victims: int
    lost_victims: int
    wrong_victims: int
    expect_break: bool  # k > q/2: the paper predicts loss/corruption
    ok: bool  # observation matches the predicted side of the threshold


@dataclass
class ScenarioRow:
    """One fault-model intensity point of the campaign sweep."""

    q: int
    model: str
    intensity: float
    n_requests: int
    satisfied: int
    degraded: int
    lost: int
    wrong_below: int  # silent wrong reads below threshold (violations)
    lost_below: int  # quorum losses below threshold (violations)
    extra_iterations: int
    ok: bool


@dataclass
class CampaignResult:
    """Everything one campaign run measured."""

    thresholds: list[ThresholdRow] = field(default_factory=list)
    scenarios: list[ScenarioRow] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True iff no semantic violation below the q/2 threshold."""
        return not self.violations

    def to_dict(self) -> dict:
        """JSON-serializable form (schema documented by the keys)."""
        return {
            "schema": 1,
            "ok": self.ok,
            "meta": self.meta,
            "violations": list(self.violations),
            "thresholds": [asdict(r) for r in self.thresholds],
            "scenarios": [asdict(r) for r in self.scenarios],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignResult":
        """Rehydrate a result from its :meth:`to_dict` form."""
        return cls(
            thresholds=[ThresholdRow(**r) for r in d.get("thresholds", [])],
            scenarios=[ScenarioRow(**r) for r in d.get("scenarios", [])],
            violations=list(d.get("violations", [])),
            meta=dict(d.get("meta", {})),
        )


def harness_for_q(q: int, seed: int = 0):
    """A majority-quorum scheme with ``q + 1`` copies for the campaign.

    q = 2 and q = 4 run the paper's own construction (via
    :class:`~repro.schemes.pp_adapter.PPAdapter`); other q (the paper
    defers those parameters) run the Upfal-Wigderson random-placement
    baseline with ``2c - 1 = q + 1`` copies -- the protocol, store, and
    majority discipline under test are identical either way.
    """
    if q % 2 != 0 or q < 2:
        raise ValueError("q must be an even positive integer")
    from repro.schemes.pp_adapter import PPAdapter

    if q == 2:
        return PPAdapter(2, 5)
    if q == 4:
        return PPAdapter(4, 3)
    from repro.schemes.upfal_wigderson import UpfalWigdersonScheme

    return UpfalWigdersonScheme(N=512, M=4096, c=q // 2 + 1, seed=seed)


def _propagate(store, modules, slots, values, time):
    """Stamp (values, time) into *every* copy cell of the batch."""
    store.write(
        modules, slots, np.broadcast_to(values[:, None], modules.shape), time
    )


def _lost_mask(res, n: int) -> np.ndarray:
    """(V,) bool mask of the variables the access reported lost."""
    mask = np.zeros(n, dtype=bool)
    if res.unsatisfiable is not None:
        mask[res.unsatisfiable] = True
    return mask


def _check_invariant(
    res,
    expected: np.ndarray,
    faulty_counts: np.ndarray,
    tol: int,
    where: str,
    violations: list[str],
) -> tuple[int, int]:
    """The memory-semantics invariant under faults: every variable with
    <= tol faulty copies is satisfied and reads the latest completed
    write.  Returns (wrong_below, lost_below) violation counts."""
    n = expected.shape[0]
    lost = _lost_mask(res, n)
    below = faulty_counts <= tol
    lost_below = int(np.count_nonzero(lost & below))
    wrong = np.zeros(n, dtype=bool)
    if res.values is not None:
        wrong = (~lost) & (res.values != expected)
    wrong_below = int(np.count_nonzero(wrong & below))
    if lost_below:
        violations.append(
            f"{where}: {lost_below} variable(s) lost their quorum with "
            f"<= {tol} faulty copies"
        )
    if wrong_below:
        violations.append(
            f"{where}: {wrong_below} silent wrong read(s) with "
            f"<= {tol} faulty copies"
        )
    return wrong_below, lost_below


def threshold_experiment(
    q: int,
    n_victims: int = 12,
    n_requests: int | None = None,
    seed: int = 0,
    violations: list[str] | None = None,
) -> list[ThresholdRow]:
    """The adversarial ladder pinning the q/2 break-even for one ``q``.

    For ``k = 0 .. q/2 + 1`` and pairwise-disjoint victims: the *killed*
    ladder fails the modules of exactly ``k`` copies per victim; the
    *stale* ladder rolls exactly ``k`` fully propagated copies back to
    an old (value, timestamp), and at ``k = q/2 + 1`` additionally kills
    the fresh remnant so the corrupted majority is the only reachable
    quorum.  Appends any observed violation to ``violations``.
    """
    if violations is None:
        violations = []
    sch = harness_for_q(q, seed)
    count = n_requests or min(sch.N, sch.M, 600)
    idx = sch.random_request_set(count, seed=seed)
    modules = sch.placement(idx)
    slots = sch.slots(idx, modules)
    ctx = FaultContext(sch.N, modules, sch.read_quorum, slots=slots)
    victims = disjoint_victims(modules, n_victims)
    tol = ctx.tolerance
    vals = (idx * 7 + 3) % _VAL_MOD
    old_vals = (idx * 5 + 1) % _VAL_MOD
    retry = 64 * (count + ctx.copies)
    rows: list[ThresholdRow] = []
    for k in range(tol + 2):
        expect_break = k > tol
        # -- killed-copy ladder ------------------------------------------------
        store = sch.make_store()
        sch.write(idx, values=vals, store=store, time=1)
        plan = TargetedAttack(copies_per_victim=k, victims=victims).plan(
            ctx, 1.0, seed=seed
        )
        res = sch.read(
            idx, store=store, time=2, retry_limit=retry, **plan.access_kwargs()
        )
        dead = plan.dead_copy_counts(modules)
        _check_invariant(
            res, vals, dead, tol, f"threshold q={q} killed k={k}", violations
        )
        lost = _lost_mask(res, count)
        lost_victims = int(np.count_nonzero(lost[victims]))
        wrong_victims = int(
            np.count_nonzero(
                (~lost[victims]) & (res.values[victims] != vals[victims])
            )
        )
        ok = (
            lost_victims == victims.size and wrong_victims == 0
            if expect_break
            else lost_victims == 0 and wrong_victims == 0
        )
        if not ok:
            violations.append(
                f"threshold q={q} killed k={k}: expected "
                f"{'total loss' if expect_break else 'no damage'}, saw "
                f"{lost_victims} lost / {wrong_victims} wrong of "
                f"{victims.size} victims"
            )
        rows.append(
            ThresholdRow(
                q=q, attack="killed", k=k, n_victims=int(victims.size),
                lost_victims=lost_victims, wrong_victims=wrong_victims,
                expect_break=expect_break, ok=ok,
            )
        )
        # -- stale-copy ladder -------------------------------------------------
        store = sch.make_store()
        _propagate(store, modules, slots, old_vals, 1)
        _propagate(store, modules, slots, vals, 2)
        plan = StaleCopies(copies_per_victim=k, victims=victims).plan(
            ctx, 1.0, seed=seed
        )
        StaleCopies.apply(plan, store, ctx, old_vals, 1)
        kwargs: dict = {"retry_limit": retry}
        if expect_break and plan.stale is not None:
            # kill the fresh remnant: the stale majority becomes the only
            # reachable quorum, forcing the silent corruption the paper's
            # threshold predicts just past q/2
            stale_cols = plan.stale[1].reshape(victims.size, -1)
            fresh_mods = []
            for i, v in enumerate(victims):
                cols = np.setdiff1d(np.arange(ctx.copies), stale_cols[i])
                fresh_mods.append(modules[int(v), cols])
            failed = np.unique(np.concatenate(fresh_mods)).astype(np.int64)
            kwargs.update(failed_modules=failed, allow_partial=True)
        res = sch.read(idx, store=store, time=3, **kwargs)
        stale_counts = plan.stale_copy_counts(count)
        dead = (
            np.isin(modules, kwargs["failed_modules"]).sum(axis=1)
            if "failed_modules" in kwargs
            else np.zeros(count, dtype=np.int64)
        )
        _check_invariant(
            res, vals, stale_counts + dead, tol,
            f"threshold q={q} stale k={k}", violations,
        )
        lost = _lost_mask(res, count)
        lost_victims = int(np.count_nonzero(lost[victims]))
        wrong_victims = int(
            np.count_nonzero(
                (~lost[victims]) & (res.values[victims] != vals[victims])
            )
        )
        ok = (
            wrong_victims + lost_victims == victims.size
            if expect_break
            else lost_victims == 0 and wrong_victims == 0
        )
        if not ok:
            violations.append(
                f"threshold q={q} stale k={k}: expected "
                f"{'corruption/loss' if expect_break else 'exact reads'}, "
                f"saw {lost_victims} lost / {wrong_victims} wrong of "
                f"{victims.size} victims"
            )
        rows.append(
            ThresholdRow(
                q=q, attack="stale", k=k, n_victims=int(victims.size),
                lost_victims=lost_victims, wrong_victims=wrong_victims,
                expect_break=expect_break, ok=ok,
            )
        )
    return rows


def _run_scenario(
    sch,
    idx: np.ndarray,
    modules: np.ndarray,
    slots: np.ndarray,
    ctx: FaultContext,
    model: FaultModel,
    intensity: float,
    q: int,
    seed: int,
    violations: list[str],
) -> ScenarioRow:
    """One (model, intensity) point: degraded write + read, invariant
    check, iteration overhead vs a fault-free twin read."""
    count = idx.shape[0]
    tol = ctx.tolerance
    vals = (idx * 7 + 3) % _VAL_MOD
    old_vals = (idx * 5 + 1) % _VAL_MOD
    retry = 64 * (count + ctx.copies)
    plan = model.plan(ctx, intensity, seed=seed)

    store = sch.make_store()
    _propagate(store, modules, slots, old_vals, 1)
    expected = vals.copy()
    if plan.stale is not None:
        # staleness is measured against a fully propagated write
        _propagate(store, modules, slots, vals, 2)
        StaleCopies.apply(plan, store, ctx, old_vals, 1)
    else:
        kw = dict(plan.access_kwargs())
        if kw:
            kw["retry_limit"] = retry
        wres = sch.write(idx, values=vals, store=store, time=2, **kw)
        lost_w = _lost_mask(wres, count)
        expected[lost_w] = old_vals[lost_w]  # never written; old value stands

    # fault-free twin: the iteration cost the faults are charged against
    base = sch.read(idx, store=sch.make_store(), time=1)
    kw = dict(plan.access_kwargs())
    if kw or plan.grey_periods is not None:
        kw["retry_limit"] = retry
    res = sch.read(idx, store=store, time=3, **kw)

    faulty = plan.dead_copy_counts(modules) + plan.stale_copy_counts(count)
    where = f"scenario q={q} {model.name} intensity={intensity}"
    wrong_below, lost_below = _check_invariant(
        res, expected, faulty, tol, where, violations
    )
    rep = res.fault_report
    if rep is not None:
        rep.with_baseline(base.total_iterations, res.total_iterations)
    extra = res.total_iterations - base.total_iterations
    lost_n = int(_lost_mask(res, count).sum())
    degraded = rep.n_degraded if rep is not None else 0
    satisfied = count - lost_n - degraded
    if _obs.metrics_enabled():
        m = _obs.metrics()
        m.counter("faults.scenarios", model=model.name).inc()
        m.counter("faults.lost").inc(lost_n)
        m.counter("faults.violations").inc(wrong_below + lost_below)
    return ScenarioRow(
        q=q, model=model.name, intensity=float(intensity),
        n_requests=count, satisfied=satisfied, degraded=degraded,
        lost=lost_n, wrong_below=wrong_below, lost_below=lost_below,
        extra_iterations=int(extra), ok=(wrong_below + lost_below) == 0,
    )


def run_campaign(
    qs: tuple[int, ...] = (2, 4, 8),
    intensities: tuple[float, ...] = (0.0, 0.05, 0.15),
    models: list[FaultModel] | None = None,
    n_victims: int = 12,
    n_requests: int | None = None,
    seed: int = 0,
) -> CampaignResult:
    """Run the full campaign: threshold ladders for every ``q`` plus the
    model x intensity sweep, under obs spans/metrics when enabled."""
    models = models if models is not None else default_models()
    result = CampaignResult(
        meta={
            "qs": list(qs),
            "intensities": list(intensities),
            "models": [m.name for m in models],
            "n_victims": n_victims,
            "seed": seed,
        }
    )
    with _obs.span(
        "faults.campaign", qs=list(qs), models=[m.name for m in models]
    ) as sp:
        for q in qs:
            with _obs.span("faults.threshold", q=q):
                result.thresholds.extend(
                    threshold_experiment(
                        q, n_victims=n_victims, n_requests=n_requests,
                        seed=seed, violations=result.violations,
                    )
                )
            sch = harness_for_q(q, seed)
            count = n_requests or min(sch.N, sch.M, 600)
            idx = sch.random_request_set(count, seed=seed)
            modules = sch.placement(idx)
            slots = sch.slots(idx, modules)
            ctx = FaultContext(sch.N, modules, sch.read_quorum, slots=slots)
            for model in models:
                for intensity in intensities:
                    with _obs.span(
                        "faults.scenario", q=q, model=model.name,
                        intensity=float(intensity),
                    ):
                        result.scenarios.append(
                            _run_scenario(
                                sch, idx, modules, slots, ctx, model,
                                intensity, q, seed, result.violations,
                            )
                        )
        sp.add(violations=len(result.violations))
    return result


def render_markdown(result: CampaignResult) -> str:
    """The campaign report as markdown (threshold + sweep tables)."""
    lines = ["# Fault-injection campaign", ""]
    verdict = "PASS" if result.ok else "FAIL"
    lines.append(
        f"**Verdict: {verdict}** -- {len(result.violations)} semantic "
        f"violation(s) below the q/2 threshold."
    )
    lines.append("")
    meta = result.meta
    if meta:
        lines.append(
            f"q in {meta.get('qs')}, intensities {meta.get('intensities')}, "
            f"models {meta.get('models')}, seed {meta.get('seed')}."
        )
        lines.append("")
    lines.append("## q/2 threshold ladders")
    lines.append("")
    lines.append(
        "Exactly k copies of each disjoint victim are attacked; the paper "
        "predicts full availability and exact reads up to k = q/2 and the "
        "first loss (killed) / silent stale read (stale) at k = q/2 + 1."
    )
    lines.append("")
    lines.append("| q | attack | k | victims | lost | wrong | side | ok |")
    lines.append("|---|--------|---|---------|------|-------|------|----|")
    for r in result.thresholds:
        side = "break" if r.expect_break else "tolerate"
        mark = "yes" if r.ok else "**NO**"
        lines.append(
            f"| {r.q} | {r.attack} | {r.k} | {r.n_victims} | "
            f"{r.lost_victims} | {r.wrong_victims} | {side} | {mark} |"
        )
    lines.append("")
    lines.append("## Intensity sweep")
    lines.append("")
    lines.append(
        "| q | model | intensity | requests | satisfied | degraded | lost "
        "| wrong<=q/2 | lost<=q/2 | extra iters | ok |"
    )
    lines.append(
        "|---|-------|-----------|----------|-----------|----------|------"
        "|-----------|----------|-------------|----|"
    )
    for s in result.scenarios:
        mark = "yes" if s.ok else "**NO**"
        lines.append(
            f"| {s.q} | {s.model} | {s.intensity} | {s.n_requests} | "
            f"{s.satisfied} | {s.degraded} | {s.lost} | {s.wrong_below} | "
            f"{s.lost_below} | {s.extra_iterations} | {mark} |"
        )
    lines.append("")
    if result.violations:
        lines.append("## Violations")
        lines.append("")
        for v in result.violations:
            lines.append(f"- {v}")
        lines.append("")
    return "\n".join(lines)


def write_report(result: CampaignResult, out_dir: str) -> tuple[str, str]:
    """Write ``faults_campaign.md`` + ``.json`` under ``out_dir``;
    returns (md_path, json_path)."""
    os.makedirs(out_dir, exist_ok=True)
    md_path = os.path.join(out_dir, REPORT_BASENAME + ".md")
    json_path = os.path.join(out_dir, REPORT_BASENAME + ".json")
    with open(md_path, "w") as fh:
        fh.write(render_markdown(result))
    with open(json_path, "w") as fh:
        json.dump(result.to_dict(), fh, indent=2)
    return md_path, json_path
