"""Adversarial fault models over the copy map ``G(V, U; E)``.

Beyond the random module crashes of
:class:`~repro.mpc.faults.FaultSchedule`, this library packages the
attacks the paper's expansion argument is actually about: an adversary
that *sees* the copy map and kills exactly ``k`` copies of chosen
variables, modules that go grey (answer only every j-th iteration), and
Byzantine-lite copies that serve stale timestamps.  Every model turns an
``intensity`` knob into a :class:`FaultPlan` -- a declarative bundle of
failed modules, grey periods, and stale copies that the campaign runner
feeds to the protocol and the store.

All models are pure functions of ``(context, intensity, seed)``: the
same arguments always produce the same plan, so campaigns are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mpc.faults import FaultSchedule

__all__ = [
    "FaultContext",
    "FaultPlan",
    "FaultModel",
    "RandomCrashes",
    "TargetedAttack",
    "GreyModules",
    "StaleCopies",
    "disjoint_victims",
    "default_models",
    "make_model",
    "MODEL_NAMES",
]


@dataclass(frozen=True)
class FaultContext:
    """What a fault model is allowed to see: the machine size and the
    copy map (and, for stale-copy attacks, the physical slots)."""

    #: module count N of the machine
    n_modules: int
    #: (V, r) module ids of every copy of every requested variable
    module_ids: np.ndarray
    #: copies an access must reach (``q/2 + 1``)
    majority: int
    #: (V, r) physical slots matching ``module_ids`` (stale attacks only)
    slots: np.ndarray | None = None

    @property
    def n_variables(self) -> int:
        """Number of requested variables V."""
        return int(self.module_ids.shape[0])

    @property
    def copies(self) -> int:
        """Copies per variable r = q + 1."""
        return int(self.module_ids.shape[1])

    @property
    def tolerance(self) -> int:
        """The paper's break-even: ``r - majority`` = q/2 copies may die."""
        return self.copies - self.majority


@dataclass
class FaultPlan:
    """Declarative fault bundle a model produced for one access batch."""

    #: unique sorted module ids that never serve
    failed_modules: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: (N,) serve periods (1 = healthy, j >= 2 = answers every j-th
    #: iteration) or None when no module is grey
    grey_periods: np.ndarray | None = None
    #: (rows, cols) copy coordinates into the batch's (V, r) copy map
    #: that must be rolled back to stale values, or None
    stale: tuple[np.ndarray, np.ndarray] | None = None
    #: victim row -> int64 array of copy columns the model targeted
    targeted: dict[int, np.ndarray] | None = None

    @property
    def empty(self) -> bool:
        """True iff the plan injects nothing (the intensity-0 plan)."""
        return (
            self.failed_modules.size == 0
            and self.grey_periods is None
            and self.stale is None
        )

    def access_kwargs(self) -> dict:
        """Protocol kwargs realizing the dead/grey part of the plan.

        Empty plans return ``{}`` so the caller hits the exact fault-free
        code path (the differential tests pin this down bit-for-bit).
        """
        kw: dict = {}
        if self.failed_modules.size:
            kw["failed_modules"] = self.failed_modules
            kw["allow_partial"] = True
        if self.grey_periods is not None:
            kw["grey_modules"] = self.grey_periods
        return kw

    def dead_copy_counts(self, module_ids: np.ndarray) -> np.ndarray:
        """(V,) copies of each variable living in failed modules."""
        if not self.failed_modules.size:
            return np.zeros(module_ids.shape[0], dtype=np.int64)
        return np.isin(module_ids, self.failed_modules).sum(axis=1).astype(np.int64)

    def stale_copy_counts(self, n_variables: int) -> np.ndarray:
        """(V,) copies of each variable marked stale by the plan."""
        out = np.zeros(n_variables, dtype=np.int64)
        if self.stale is not None:
            np.add.at(out, self.stale[0], 1)
        return out


def disjoint_victims(module_ids: np.ndarray, want: int) -> np.ndarray:
    """Greedily pick up to ``want`` variables whose copy-module sets are
    pairwise disjoint, so killing one victim's modules has zero
    collateral on the others (exact-``k`` attacks stay exact)."""
    used: set[int] = set()
    victims: list[int] = []
    for v in range(module_ids.shape[0]):
        row = module_ids[v]
        if any(int(m) in used for m in row):
            continue
        victims.append(v)
        used.update(int(m) for m in row)
        if len(victims) >= want:
            break
    return np.asarray(victims, dtype=np.int64)


class FaultModel:
    """Base interface: turn an intensity into a :class:`FaultPlan`."""

    #: registry / display name
    name = "abstract"

    def plan(self, ctx: FaultContext, intensity: float, seed: int = 0) -> FaultPlan:
        """Produce the fault plan for one batch; deterministic in
        ``(ctx, intensity, seed)``.  Intensity 0 must return an empty
        plan."""
        raise NotImplementedError

    @staticmethod
    def _check_intensity(intensity: float) -> float:
        """Validate the shared [0, 1] intensity knob."""
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {intensity}")
        return float(intensity)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class RandomCrashes(FaultModel):
    """Uniform random module crashes, permanent or transient.

    ``intensity`` is the fraction of the module pool taken down.  With
    ``repair_lag=0`` the crash set is permanent for the batch; a positive
    lag models transient crashes and is exposed through
    :meth:`schedule`, which drives multi-step availability runs with the
    exact-repair :class:`~repro.mpc.faults.FaultSchedule`.
    """

    name = "crash"

    def __init__(self, repair_lag: int = 0):
        if repair_lag < 0:
            raise ValueError("repair_lag must be >= 0")
        self.repair_lag = repair_lag
        if repair_lag:
            self.name = "transient-crash"

    def plan(self, ctx: FaultContext, intensity: float, seed: int = 0) -> FaultPlan:
        """Kill ``floor(intensity * N)`` uniformly chosen modules."""
        intensity = self._check_intensity(intensity)
        k = int(intensity * ctx.n_modules)
        if k == 0:
            return FaultPlan()
        rng = np.random.default_rng(seed)
        failed = np.sort(rng.choice(ctx.n_modules, size=k, replace=False))
        return FaultPlan(failed_modules=failed.astype(np.int64))

    def schedule(
        self, n_modules: int, intensity: float, seed: int = 0
    ) -> FaultSchedule:
        """An evolving failure/repair schedule at per-step rate
        ``intensity`` (transient models repair after ``repair_lag``)."""
        return FaultSchedule(
            n_modules,
            self._check_intensity(intensity),
            repair_lag=self.repair_lag,
            seed=seed,
        )


class TargetedAttack(FaultModel):
    """Adversary with the copy map: kill exactly ``k`` copies of chosen
    victim variables by failing the modules that host those copies.

    Victims default to a greedily chosen pairwise-disjoint set (see
    :func:`disjoint_victims`) so the per-victim kill count is *exactly*
    ``copies_per_victim`` with no collateral between victims; pass an
    explicit ``victims`` array to attack specific variables instead.
    ``intensity`` scales the number of auto-chosen victims (fraction of
    the request batch, at least one victim when intensity > 0).
    """

    name = "targeted"

    def __init__(
        self, copies_per_victim: int = 1, victims: np.ndarray | None = None
    ):
        if copies_per_victim < 0:
            raise ValueError("copies_per_victim must be >= 0")
        self.copies_per_victim = copies_per_victim
        self.victims = (
            np.asarray(victims, dtype=np.int64) if victims is not None else None
        )

    def plan(self, ctx: FaultContext, intensity: float, seed: int = 0) -> FaultPlan:
        """Fail exactly the modules of ``copies_per_victim`` seeded-chosen
        copies of each victim."""
        intensity = self._check_intensity(intensity)
        k = min(self.copies_per_victim, ctx.copies)
        if intensity == 0.0 or k == 0:
            return FaultPlan()
        if self.victims is not None:
            victims = self.victims
        else:
            want = max(1, int(intensity * ctx.n_variables))
            victims = disjoint_victims(ctx.module_ids, want)
        if np.any((victims < 0) | (victims >= ctx.n_variables)):
            raise ValueError("victim index out of range")
        rng = np.random.default_rng(seed)
        targeted: dict[int, np.ndarray] = {}
        mods: list[np.ndarray] = []
        for v in victims:
            cols = np.sort(rng.choice(ctx.copies, size=k, replace=False))
            targeted[int(v)] = cols.astype(np.int64)
            mods.append(ctx.module_ids[int(v), cols])
        failed = np.unique(np.concatenate(mods)).astype(np.int64)
        return FaultPlan(failed_modules=failed, targeted=targeted)


class GreyModules(FaultModel):
    """Slow ("grey") modules that answer only every j-th iteration.

    Nothing dies: affected variables stay satisfiable and eventually
    reach quorum, paying extra iterations -- the degraded outcome the
    :class:`~repro.faults.report.FaultReport` accounts for.
    ``intensity`` is the fraction of modules slowed to ``period``.
    """

    name = "grey"

    def __init__(self, period: int = 3):
        if period < 2:
            raise ValueError("grey period must be >= 2")
        self.period = period

    def plan(self, ctx: FaultContext, intensity: float, seed: int = 0) -> FaultPlan:
        """Slow ``floor(intensity * N)`` seeded-chosen modules."""
        intensity = self._check_intensity(intensity)
        k = int(intensity * ctx.n_modules)
        if k == 0:
            return FaultPlan()
        rng = np.random.default_rng(seed)
        grey = rng.choice(ctx.n_modules, size=k, replace=False)
        periods = np.ones(ctx.n_modules, dtype=np.int64)
        periods[grey] = self.period
        return FaultPlan(grey_periods=periods)


class StaleCopies(FaultModel):
    """Byzantine-lite copies that serve old values with old timestamps.

    Marks exactly ``copies_per_victim`` copies of each victim variable
    stale; :meth:`apply` realizes the plan by rolling the chosen cells
    of a store back to an earlier (value, timestamp).  Reads stay
    correct while stale copies per variable <= q/2, because every read
    quorum of ``q/2 + 1`` then still intersects the fresh set -- the
    same intersection argument as for crashes.
    """

    name = "stale"

    def __init__(
        self, copies_per_victim: int = 1, victims: np.ndarray | None = None
    ):
        if copies_per_victim < 0:
            raise ValueError("copies_per_victim must be >= 0")
        self.copies_per_victim = copies_per_victim
        self.victims = (
            np.asarray(victims, dtype=np.int64) if victims is not None else None
        )

    def plan(self, ctx: FaultContext, intensity: float, seed: int = 0) -> FaultPlan:
        """Mark ``copies_per_victim`` seeded copies of each victim stale."""
        intensity = self._check_intensity(intensity)
        k = min(self.copies_per_victim, ctx.copies)
        if intensity == 0.0 or k == 0:
            return FaultPlan()
        if self.victims is not None:
            victims = self.victims
        else:
            want = max(1, int(intensity * ctx.n_variables))
            victims = disjoint_victims(ctx.module_ids, want)
        rng = np.random.default_rng(seed)
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        for v in victims:
            c = np.sort(rng.choice(ctx.copies, size=k, replace=False))
            rows.append(np.full(k, int(v), dtype=np.int64))
            cols.append(c.astype(np.int64))
        return FaultPlan(
            stale=(np.concatenate(rows), np.concatenate(cols))
        )

    @staticmethod
    def apply(
        plan: FaultPlan,
        store,
        ctx: FaultContext,
        old_values: np.ndarray,
        old_time: int,
    ) -> int:
        """Roll the plan's stale cells back to ``(old_values, old_time)``.

        ``old_values`` is per-variable (aligned with the batch); returns
        the number of cells rolled back.  Requires ``ctx.slots``.
        """
        if plan.stale is None:
            return 0
        if ctx.slots is None:
            raise ValueError("stale application needs ctx.slots")
        rows, cols = plan.stale
        store.write(
            ctx.module_ids[rows, cols],
            ctx.slots[rows, cols],
            np.asarray(old_values, dtype=np.int64)[rows],
            old_time,
        )
        return int(rows.size)


#: registry names accepted by :func:`make_model` and the CLI
MODEL_NAMES = ("crash", "transient-crash", "targeted", "grey", "stale")


def make_model(name: str, **kwargs) -> FaultModel:
    """Build a model from its registry name (CLI surface)."""
    if name == "crash":
        return RandomCrashes(**kwargs)
    if name == "transient-crash":
        kwargs.setdefault("repair_lag", 3)
        return RandomCrashes(**kwargs)
    if name == "targeted":
        return TargetedAttack(**kwargs)
    if name == "grey":
        return GreyModules(**kwargs)
    if name == "stale":
        return StaleCopies(**kwargs)
    raise ValueError(f"unknown fault model {name!r} (one of {MODEL_NAMES})")


def default_models() -> list[FaultModel]:
    """One instance of every model family, campaign defaults."""
    return [
        RandomCrashes(),
        RandomCrashes(repair_lag=3),
        TargetedAttack(copies_per_victim=1),
        GreyModules(period=3),
        StaleCopies(copies_per_victim=1),
    ]
