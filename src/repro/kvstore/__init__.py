"""A parallel key-value store on top of the memory organization.

The paper's introduction names "parallel databases" next to PRAMs as
the setting where the granularity problem arises, and its majority
machinery descends from Thomas's replicated-database quorums [Tho79].
This package closes that loop with an application-level store:

* keys are hashed into an open-addressed table whose *slots are shared
  variables* of any :class:`~repro.schemes.base.MemoryScheme`;
* every batch of puts/gets is executed as rounds of parallel variable
  accesses through the majority protocol on the MPC, so the store pays
  (and reports) real simulated machine time;
* replication comes for free: the store survives module failures
  exactly as far as the underlying scheme's quorums allow.
"""

from repro.kvstore.store import ParallelKVStore

__all__ = ["ParallelKVStore"]
