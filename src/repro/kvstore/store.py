"""Open-addressed parallel hash table over shared variables.

Layout: a table of ``capacity`` slots; slot ``s`` owns two shared
variables of the underlying scheme -- ``2s`` (key fingerprint) and
``2s + 1`` (value).  Batches of operations probe in parallel: each
round issues ONE batched majority access for every key still probing,
so a batch of B operations with maximum probe chain L costs L protocol
rounds, not B.

Conventions: fingerprints are 31-bit nonzero hashes; an unwritten cell
reads -1 (empty); ``TOMBSTONE`` marks deleted slots, which lookups skip
and inserts may recycle.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

import numpy as np

import repro.obs as _obs
from repro.faults.report import QuorumLostError
from repro.schemes.base import MemoryScheme

__all__ = ["ParallelKVStore", "TOMBSTONE"]

#: fingerprint sentinel for deleted slots
TOMBSTONE = (1 << 31) - 1

_EMPTY = -1


class ParallelKVStore:
    """Replicated parallel key-value store.

    Parameters
    ----------
    scheme:
        The memory organization that stores the table (capacity is
        ``scheme.M // 2`` slots).
    seed:
        Salt for the key hash.
    failed_modules:
        Optional module ids that never serve (fault injection; also
        settable later via :meth:`set_failed_modules`).  While every
        table variable keeps >= ``q/2 + 1`` live copies the store works
        normally; a probe that loses a quorum raises
        :class:`~repro.faults.report.QuorumLostError` instead of
        mistaking an unreachable cell for an empty one.
    engine:
        Default batch executor for every protocol access this store
        issues (``"vector"``, ``"scalar"``, or None for the
        ``$REPRO_ENGINE``/vector default).  Each batch operation also
        accepts a per-call ``engine=`` override.
    var_base:
        Offset added to the variable ids this store *emits* (``mem.op``
        trace events); placement is untouched.  Sharded deployments
        give each store a disjoint namespace (shard ``i`` uses
        ``i * scheme.M``) so the conformance checker never aliases two
        stores' variables.

    Notes
    -----
    Keys may be Python ints or strings.  Values must fit in
    ``[0, 2^32)`` (the protocol packs values with timestamps).  Each
    batch must contain distinct keys -- combine duplicates upstream, as
    the MPC model does for concurrent same-cell requests.
    """

    def __init__(
        self,
        scheme: MemoryScheme,
        seed: int = 0,
        failed_modules: np.ndarray | None = None,
        engine: str | None = None,
        var_base: int = 0,
    ):
        if scheme.M < 8:
            raise ValueError("scheme too small to host a table")
        self.scheme = scheme
        self.capacity = scheme.M // 2
        self.seed = seed
        self.engine = engine
        self.var_base = int(var_base)
        self.store = scheme.make_store()
        self._time = 0
        self.size = 0
        self.mpc_iterations = 0
        self.protocol_rounds = 0
        self.failed_modules: np.ndarray | None = None
        self.set_failed_modules(failed_modules)

    def set_failed_modules(self, failed_modules: np.ndarray | None) -> None:
        """Install (or clear, with None) the failed-module set applied
        to every subsequent batch operation."""
        if failed_modules is None:
            self.failed_modules = None
            return
        arr = np.asarray(failed_modules, dtype=np.int64).reshape(-1)
        self.failed_modules = arr if arr.size else None

    # -- hashing -----------------------------------------------------------

    def _fingerprint(self, keys) -> np.ndarray:
        """Stable 31-bit nonzero fingerprints of int/str keys."""
        out = np.empty(len(keys), dtype=np.int64)
        for i, key in enumerate(keys):
            data = (
                int(key).to_bytes(16, "little", signed=True)
                if isinstance(key, (int, np.integer))
                else str(key).encode()
            )
            h = hashlib.blake2b(
                data, digest_size=8, key=self.seed.to_bytes(8, "little")
            ).digest()
            fp = int.from_bytes(h, "little") % ((1 << 31) - 2) + 1
            out[i] = fp  # in [1, 2^31 - 2]: never EMPTY, never TOMBSTONE
        return out

    def _home(self, fps: np.ndarray) -> np.ndarray:
        """Home slot of each fingerprint."""
        return (fps * np.int64(2654435761)) % self.capacity

    def fingerprints(self, keys: Sequence[int | str]) -> np.ndarray:
        """Public view of the table's key fingerprints (stable per
        seed).  Distinct keys with equal fingerprints alias to the same
        slot; callers building large key sets can screen them out."""
        return self._fingerprint(keys)

    def locate(
        self, keys: Sequence[int | str], engine: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probe for each key's table slot: ``(found_mask, slot)``.

        Runs real protocol reads (advances the store clock); the slot
        of a missing key is -1.  Fault-injection harnesses use this to
        map keys onto the scheme variables that store them (slot ``s``
        holds the fingerprint in variable ``2s`` and the value in
        ``2s + 1``).
        """
        fps = self._fingerprint(keys)
        if np.unique(fps).size != fps.size:
            raise ValueError("batch contains duplicate keys")
        found, slot, _ = self._probe(fps, engine=engine)
        return found, slot

    # -- protocol plumbing ------------------------------------------------------

    def _tick(self) -> int:
        self._time += 1
        return self._time

    @property
    def clock(self) -> int:
        """The store's logical round clock (after the last batch)."""
        return self._time

    def sync_clock(self, time: int) -> int:
        """Advance the logical clock to at least ``time`` (never back).

        Lets several stores share one monotone round order -- the
        sharded service syncs every shard to the global service clock
        before each batch so the ``kv.op`` stream stays totally ordered
        across shards for the streaming checker.
        """
        self._time = max(self._time, int(time))
        return self._time

    def _fault_kwargs(self) -> dict:
        """Degraded-mode protocol kwargs (empty on the healthy path)."""
        if self.failed_modules is None:
            return {}
        return {"failed_modules": self.failed_modules, "allow_partial": True}

    def _resolve_engine(self, engine: str | None) -> str | None:
        """Per-call override > store default > scheme/env default."""
        return self.engine if engine is None else engine

    def _check_quorum(self, op: str, var_ids: np.ndarray, res) -> None:
        """Raise :class:`QuorumLostError` if any table variable of the
        batch lost its quorum -- a partial probe answer would be
        indistinguishable from an empty cell."""
        if res.unsatisfiable is not None and res.unsatisfiable.size:
            lost_vars = np.asarray(var_ids)[res.unsatisfiable]
            modules = (
                res.fault_report.implicated_modules
                if res.fault_report is not None
                else self.failed_modules
            )
            raise QuorumLostError(
                f"kvstore {op} lost the majority quorum for "
                f"{lost_vars.size} table variable(s) under "
                f"{0 if self.failed_modules is None else self.failed_modules.size} "
                f"failed modules",
                variables=lost_vars,
                modules=modules,
            )

    def _read_vars(
        self, var_ids: np.ndarray, engine: str | None = None
    ) -> np.ndarray:
        """One batched majority read of (possibly duplicated) variables."""
        uniq, inverse = np.unique(var_ids, return_inverse=True)
        res = self.scheme.read(
            uniq, store=self.store, time=self._tick(),
            engine=self._resolve_engine(engine), var_base=self.var_base,
            **self._fault_kwargs(),
        )
        self._check_quorum("read", uniq, res)
        self.mpc_iterations += res.total_iterations
        self.protocol_rounds += 1
        return res.values[inverse]

    def _write_vars(
        self, var_ids: np.ndarray, values: np.ndarray,
        engine: str | None = None,
    ) -> None:
        """One batched majority write (var_ids must be distinct)."""
        res = self.scheme.write(
            var_ids, values=values, store=self.store, time=self._tick(),
            engine=self._resolve_engine(engine), var_base=self.var_base,
            **self._fault_kwargs(),
        )
        self._check_quorum("write", var_ids, res)
        self.mpc_iterations += res.total_iterations
        self.protocol_rounds += 1

    # -- probing core ------------------------------------------------------------

    def _probe(self, fps: np.ndarray, engine: str | None = None):
        """Find each key's slot: returns (found_mask, slot, claim_slot).

        ``slot`` is the key's slot when found; ``claim_slot`` is where an
        insert should go (first tombstone on the chain, else the empty
        slot that terminated it).
        """
        B = fps.shape[0]
        pending = np.ones(B, dtype=bool)
        found = np.zeros(B, dtype=bool)
        slot = np.full(B, -1, dtype=np.int64)
        claim = np.full(B, -1, dtype=np.int64)
        offset = np.zeros(B, dtype=np.int64)
        home = self._home(fps)
        obs_on = _obs.enabled()
        rounds = 0
        with _obs.span("kvstore.probe", batch=int(B)) as sp:
            for _ in range(self.capacity + 1):
                if not pending.any():
                    break
                idx = np.nonzero(pending)[0]
                if obs_on:
                    _obs.tracer().event(
                        "kvstore.probe_round", round=rounds,
                        pending=int(idx.size),
                    )
                    if _obs.metrics_enabled():
                        _obs.metrics().counter("kvstore.probe_rounds").inc()
                rounds += 1
                cur = (home[idx] + offset[idx]) % self.capacity
                got = self._read_vars(2 * cur, engine=engine)
                is_empty = got == _EMPTY
                is_tomb = got == TOMBSTONE
                is_mine = got == fps[idx]
                # record the first recyclable slot on the chain
                rec = is_tomb & (claim[idx] < 0)
                claim[idx[rec]] = cur[rec]
                # chain ends: empty slot
                done_empty = is_empty
                claim_at_end = idx[done_empty & (claim[idx] < 0)]
                claim[claim_at_end] = cur[done_empty & (claim[idx] < 0)]
                found[idx[is_mine]] = True
                slot[idx[is_mine]] = cur[is_mine]
                pending[idx[is_mine | done_empty]] = False
                offset[idx] += 1
            else:
                raise RuntimeError("table full: probe chain exhausted capacity")
            sp.add(rounds=rounds)
        return found, slot, claim

    def _observe_op(self, op: str, n_keys: int) -> None:
        """Entry hook for the public batch operations (self-guarded)."""
        if not _obs.enabled():
            return
        _obs.tracer().event("kvstore.op", op=op, keys=n_keys)
        if _obs.metrics_enabled():
            _obs.metrics().counter("kvstore.ops", op=op).inc()

    def _emit_kv_ops(self, op: str, keys, values) -> None:
        """One ``kv.op`` trace event per key of a completed batch -- the
        store-level record the conformance checker diffs against plain
        dict semantics (:mod:`repro.conformance`).  ``round`` is the
        store's logical clock after the batch, so successive batches are
        totally ordered.  Events go to the tracer and, when one is
        installed, the live event bus.  Callers must check
        ``_obs.enabled()`` first."""
        tr = _obs.tracer()
        if not tr.enabled and _obs.bus() is None:
            return
        for k, v in zip(keys, np.ravel(values)):
            _obs.publish(
                "kv.op", op=op, key=str(k), value=int(v), round=self._time
            )

    # -- public API ------------------------------------------------------------------

    def batch_put(
        self, keys: Sequence[int | str], values: np.ndarray,
        engine: str | None = None,
    ) -> dict[str, int]:
        """Insert/update a batch of distinct keys in parallel.

        Returns a stats dict (inserted, updated, protocol rounds used).
        ``engine`` overrides the store default executor for this batch.
        """
        if _obs.enabled():
            self._observe_op("put", len(keys))
        values = np.asarray(values, dtype=np.int64)
        if len(keys) != values.shape[0]:
            raise ValueError("keys and values must have equal length")
        if np.any((values < 0) | (values >= 1 << 32)):
            raise ValueError("values must be in [0, 2^32)")
        fps = self._fingerprint(keys)
        if np.unique(fps).size != fps.size:
            raise ValueError("batch contains duplicate keys")
        found, slot, claim = self._probe(fps, engine=engine)

        # resolve claim collisions: several new keys may want one slot --
        # lowest batch index wins, the rest re-probe next round
        to_insert = ~found
        while to_insert.any():
            idx = np.nonzero(to_insert)[0]
            order = np.argsort(claim[idx], kind="stable")
            sorted_claims = claim[idx][order]
            first = np.empty(sorted_claims.shape, dtype=bool)
            first[:1] = True
            np.not_equal(sorted_claims[1:], sorted_claims[:-1], out=first[1:])
            winners = idx[order[first]]
            slot[winners] = claim[winners]
            found_w = np.zeros(0)
            _ = found_w
            losers = np.setdiff1d(idx, winners)
            # winners claim their slots now (fingerprint + value writes
            # happen together below); losers re-probe against the updated
            # table
            self._write_vars(2 * slot[winners], fps[winners], engine=engine)
            self._write_vars(
                2 * slot[winners] + 1, values[winners], engine=engine
            )
            self.size += winners.size
            to_insert[winners] = False
            if losers.size:
                f2, s2, c2 = self._probe(fps[losers], engine=engine)
                # a loser may now find its... it cannot exist; re-claim
                claim[losers] = c2
                slot[losers] = np.where(f2, s2, slot[losers])
                newly_found = losers[f2]
                if newly_found.size:  # pragma: no cover -- distinct keys
                    to_insert[newly_found] = False
        updates = found
        if updates.any():
            self._write_vars(
                2 * slot[updates] + 1, values[updates], engine=engine
            )
        if _obs.enabled():
            self._emit_kv_ops("put", keys, values)
        return {
            "inserted": int((~found).sum()),
            "updated": int(found.sum()),
            "protocol_rounds": self.protocol_rounds,
        }

    def batch_get(
        self, keys: Sequence[int | str], engine: str | None = None
    ) -> np.ndarray:
        """Parallel lookup; returns values, -1 for missing keys.

        ``engine`` overrides the store default executor for this batch.
        """
        if _obs.enabled():
            self._observe_op("get", len(keys))
        fps = self._fingerprint(keys)
        if np.unique(fps).size != fps.size:
            raise ValueError("batch contains duplicate keys")
        found, slot, _ = self._probe(fps, engine=engine)
        out = np.full(len(keys), -1, dtype=np.int64)
        if found.any():
            vals = self._read_vars(2 * slot[found] + 1, engine=engine)
            out[found] = vals
        if _obs.enabled():
            self._emit_kv_ops("get", keys, out)
        return out

    def batch_delete(
        self, keys: Sequence[int | str], engine: str | None = None
    ) -> int:
        """Parallel delete; returns the number of keys removed.

        ``engine`` overrides the store default executor for this batch.
        """
        if _obs.enabled():
            self._observe_op("delete", len(keys))
        fps = self._fingerprint(keys)
        if np.unique(fps).size != fps.size:
            raise ValueError("batch contains duplicate keys")
        found, slot, _ = self._probe(fps, engine=engine)
        if found.any():
            self._write_vars(
                2 * slot[found],
                np.full(int(found.sum()), TOMBSTONE, dtype=np.int64),
                engine=engine,
            )
            self.size -= int(found.sum())
        if _obs.enabled():
            self._emit_kv_ops("delete", keys, found.astype(np.int64))
        return int(found.sum())

    def scan(self, engine: str | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Full-table scan: returns (fingerprints, values) of every
        occupied slot, in slot order.

        One batched read over all fingerprint cells plus one over the
        occupied value cells -- two protocol rounds regardless of size.
        """
        slots = np.arange(self.capacity, dtype=np.int64)
        fps = self._read_vars(2 * slots, engine=engine)
        occupied = (fps != _EMPTY) & (fps != TOMBSTONE)
        if not occupied.any():
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        vals = self._read_vars(2 * slots[occupied] + 1, engine=engine)
        return fps[occupied], vals

    def cost_summary(self) -> dict:
        """Accumulated simulated-machine cost."""
        return {
            "size": self.size,
            "capacity": self.capacity,
            "protocol_rounds": self.protocol_rounds,
            "mpc_iterations": self.mpc_iterations,
        }

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"ParallelKVStore(size={self.size}, capacity={self.capacity}, "
            f"scheme={getattr(self.scheme, 'name', '?')})"
        )
