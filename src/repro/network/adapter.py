"""Running the access protocol over a bounded-degree network.

Composes the two halves the paper deliberately separates: the memory
organization (which decides *what* is requested each iteration) and
request routing (which decides *how long* an iteration takes on a real
interconnect).

Mapping: processors and modules share the node set -- processor ``p``
sits at node ``p mod n_nodes``, module ``u`` at node ``u mod n_nodes``
(the topology is sized to hold ``N``).  Every protocol iteration then
costs the measured rounds of routing all active request packets to
their module nodes plus the winners' response packets back, instead of
the MPC's single unit step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mpc.machine import MPC
from repro.network.routing import route_packets

__all__ = ["NetworkProtocolResult", "run_protocol_on_network"]


@dataclass
class NetworkProtocolResult:
    """Cost of one access batch executed over a network.

    ``mpc_iterations`` is what the ideal MPC charges; ``network_rounds``
    is what the bounded-degree interconnect actually took; their ratio
    is the routing overhead the paper's model abstracts away.
    """

    mpc_iterations: int
    network_rounds: int
    request_rounds: int
    response_rounds: int
    max_link_load: int
    per_iteration_rounds: list[int] = field(default_factory=list)

    @property
    def overhead_factor(self) -> float:
        """network_rounds / mpc_iterations (>= 1)."""
        if self.mpc_iterations == 0:
            return 1.0
        return self.network_rounds / self.mpc_iterations


def run_protocol_on_network(
    module_ids: np.ndarray,
    n_modules: int,
    majority: int,
    topology,
    arbitration: str = "lowest",
    seed: int = 0,
    max_iterations: int = 1_000_000,
) -> NetworkProtocolResult:
    """Single-phase majority protocol where each iteration pays measured
    routing time on ``topology``.

    Parameters mirror :func:`repro.core.protocol.run_access_protocol`
    (count mode, one phase -- the worst clustering, which is also the
    honest one for overhead measurement since it maximizes per-iteration
    traffic).
    """
    module_ids = np.asarray(module_ids, dtype=np.int64)
    V, copies = module_ids.shape
    if topology.n_nodes < n_modules:
        raise ValueError(
            f"topology has {topology.n_nodes} nodes < N = {n_modules} modules"
        )
    mpc = MPC(n_modules, arbitration=arbitration, seed=seed)

    # tasks: processor of copy j of variable i is i*copies + j
    task_var = np.repeat(np.arange(V, dtype=np.int64), copies)
    task_copy = np.tile(np.arange(copies, dtype=np.int64), V)
    task_mod = module_ids.reshape(-1)
    task_proc = np.arange(V * copies, dtype=np.int64)
    proc_node = task_proc % topology.n_nodes
    mod_node = task_mod % topology.n_nodes

    accessed = np.zeros((V, copies), dtype=bool)
    hit_count = np.zeros(V, dtype=np.int64)
    satisfied = np.zeros(V, dtype=bool)

    iterations = 0
    req_rounds_total = 0
    resp_rounds_total = 0
    max_link = 0
    per_iter = []
    while not np.all(satisfied):
        if iterations >= max_iterations:  # pragma: no cover
            raise RuntimeError("protocol exceeded max_iterations")
        active = (~accessed.reshape(-1)) & (~satisfied[task_var])
        idx_active = np.nonzero(active)[0]
        # 1. route the requests processor -> module
        req = route_packets(topology, proc_node[idx_active], mod_node[idx_active])
        # 2. modules arbitrate (one grant per module, as on the MPC)
        winners_local = mpc.step(task_mod[idx_active])
        win = idx_active[winners_local]
        # 3. route the responses module -> processor
        resp = route_packets(topology, mod_node[win], proc_node[win])
        accessed[task_var[win], task_copy[win]] = True
        np.add.at(hit_count, task_var[win], 1)
        satisfied = hit_count >= majority
        iterations += 1
        req_rounds_total += req.rounds
        resp_rounds_total += resp.rounds
        max_link = max(max_link, req.max_link_load, resp.max_link_load)
        per_iter.append(req.rounds + resp.rounds)

    return NetworkProtocolResult(
        mpc_iterations=iterations,
        network_rounds=req_rounds_total + resp_rounds_total,
        request_rounds=req_rounds_total,
        response_rounds=resp_rounds_total,
        max_link_load=max_link,
        per_iteration_rounds=per_iter,
    )
