"""Bounded-degree interconnection networks under the MPC.

The paper's opening modeling decision: study memory organization on the
complete processor-module bipartite graph, "separating the request
routing problem -- to be dealt with when the bipartite graph is
simulated by a bounded-degree network -- from the more difficult memory
organization problem."  This package builds that deferred half, so the
cost the MPC abstracts away can be measured:

* :mod:`repro.network.topology` -- hypercube and 2-D torus topologies
  with greedy next-hop functions (vectorized);
* :mod:`repro.network.routing` -- a synchronous store-and-forward
  packet router (one packet per directed link per round) with
  congestion statistics;
* :mod:`repro.network.adapter` -- run an access batch where every
  protocol iteration pays measured routing rounds (request + response)
  instead of the MPC's unit cost.
"""

from repro.network.topology import HypercubeTopology, TorusTopology
from repro.network.routing import route_packets, RoutingResult
from repro.network.adapter import NetworkProtocolResult, run_protocol_on_network

__all__ = [
    "HypercubeTopology",
    "TorusTopology",
    "route_packets",
    "RoutingResult",
    "NetworkProtocolResult",
    "run_protocol_on_network",
]
