"""Synchronous store-and-forward packet routing.

Model: time proceeds in rounds; each *directed link* carries at most
one packet per round (the standard store-and-forward discipline of the
PRAM-simulation literature, e.g. [Ran91]).  Packets follow the
topology's deterministic greedy route; when several packets at a node
want the same outgoing link, the lowest packet id goes first (the
choice is immaterial to the totals, mirroring the MPC's arbitration
obliviousness).

The simulator is vectorized: one numpy pass per round over all
in-flight packets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RoutingResult", "route_packets"]


@dataclass
class RoutingResult:
    """Outcome of routing one batch of packets.

    Attributes
    ----------
    rounds:
        Rounds until the last packet arrived.
    total_hops:
        Sum of link traversals (= sum of path lengths actually used).
    max_link_load:
        Largest number of packets that crossed any single directed link
        over the whole run (the congestion bound of the batch).
    delivered:
        Number of packets delivered (always all of them).
    """

    rounds: int
    total_hops: int
    max_link_load: int
    delivered: int


def route_packets(
    topology,
    sources: np.ndarray,
    destinations: np.ndarray,
    max_rounds: int = 1_000_000,
    next_fn=None,
) -> RoutingResult:
    """Route packets ``sources[i] -> destinations[i]``; returns totals.

    Packets already at their destination cost zero rounds.  Complexity
    per round is O(in-flight packets log) for the link arbitration sort.
    ``next_fn(cur, dest)`` overrides the topology's greedy next hop
    (e.g. a randomized productive policy); it must make progress --
    each hop must strictly reduce remaining distance.
    """
    cur = np.asarray(sources, dtype=np.int64).copy()
    dest = np.asarray(destinations, dtype=np.int64)
    if cur.shape != dest.shape:
        raise ValueError("sources and destinations must have equal shape")
    n = cur.shape[0]
    if n == 0:
        return RoutingResult(0, 0, 0, 0)
    if np.any((cur < 0) | (cur >= topology.n_nodes)) or np.any(
        (dest < 0) | (dest >= topology.n_nodes)
    ):
        raise ValueError("node id out of range for the topology")

    link_load: dict[tuple[int, int], int] = {}
    rounds = 0
    total_hops = 0
    max_link_load = 0
    in_flight = cur != dest
    while np.any(in_flight):
        if rounds >= max_rounds:  # pragma: no cover
            raise RuntimeError("routing exceeded max_rounds")
        idx = np.nonzero(in_flight)[0]
        step_fn = next_fn if next_fn is not None else topology.vnext
        nxt = step_fn(cur[idx], dest[idx])
        # one packet per directed link (cur -> nxt): lowest id first
        link_key = cur[idx] * np.int64(topology.n_nodes) + nxt
        order = np.argsort(link_key, kind="stable")
        sorted_keys = link_key[order]
        first = np.empty(sorted_keys.shape, dtype=bool)
        first[:1] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=first[1:])
        winners = idx[order[first]]
        won_next = nxt[order[first]]
        # link-load accounting (loop over the few winners per round is
        # fine; rounds dominate)
        for c, nx in zip(cur[winners].tolist(), won_next.tolist()):
            key = (c, nx)
            link_load[key] = link_load.get(key, 0) + 1
        cur[winners] = won_next
        total_hops += winners.size
        rounds += 1
        in_flight = cur != dest
    if link_load:
        max_link_load = max(link_load.values())
    return RoutingResult(
        rounds=rounds,
        total_hops=total_hops,
        max_link_load=max_link_load,
        delivered=n,
    )
