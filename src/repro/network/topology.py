"""Bounded-degree network topologies with greedy routing functions.

A topology provides the node set, the degree bound, and a *next-hop*
function ``vnext(cur, dest)`` implementing a deterministic oblivious
greedy route (bit-fixing on the hypercube, dimension-ordered on the
torus).  Next-hop functions are fully vectorized: the router calls them
once per round for every in-flight packet.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HypercubeTopology", "TorusTopology"]


class HypercubeTopology:
    """The d-dimensional hypercube: 2^d nodes, degree d.

    Greedy bit-fixing: correct the lowest differing address bit first
    (the classic oblivious e-cube route; deadlock-free under
    store-and-forward).
    """

    def __init__(self, dimension: int):
        if not 1 <= dimension <= 24:
            raise ValueError("dimension must be in [1, 24]")
        self.dimension = dimension
        self.n_nodes = 1 << dimension
        self.degree = dimension

    @classmethod
    def at_least(cls, n: int) -> "HypercubeTopology":
        """Smallest hypercube with >= n nodes."""
        if n < 1:
            raise ValueError("n must be positive")
        return cls(max(1, int(np.ceil(np.log2(n)))))

    def neighbors(self, v: int) -> list[int]:
        """The d neighbours of node v (one per flipped bit)."""
        if not 0 <= v < self.n_nodes:
            raise ValueError(f"node {v} out of range")
        return [v ^ (1 << i) for i in range(self.dimension)]

    def vnext(self, cur: np.ndarray, dest: np.ndarray) -> np.ndarray:
        """Vectorized next hop: flip the lowest bit where cur and dest
        differ (cur == dest entries are returned unchanged)."""
        cur = np.asarray(cur, dtype=np.int64)
        dest = np.asarray(dest, dtype=np.int64)
        diff = cur ^ dest
        lowbit = diff & -diff  # isolate lowest set bit; 0 when arrived
        return cur ^ lowbit

    def vnext_random(
        self, cur: np.ndarray, dest: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Randomized productive next hop: flip a uniformly random
        differing bit (Valiant-flavoured congestion spreading for
        adversarial permutations; still fixes one bit per hop)."""
        cur = np.asarray(cur, dtype=np.int64)
        dest = np.asarray(dest, dtype=np.int64)
        diff = cur ^ dest
        out = cur.copy()
        alive = diff != 0
        if not alive.any():
            return out
        d = diff[alive]
        # choose the k-th set bit with k uniform in [0, popcount)
        pop = np.zeros_like(d)
        tmp = d.copy()
        while np.any(tmp):
            pop += tmp & 1
            tmp >>= 1
        k = (rng.random(d.shape[0]) * pop).astype(np.int64)
        chosen = np.zeros_like(d)
        remaining = d.copy()
        for _ in range(self.dimension):
            low = remaining & -remaining
            take = (k == 0) & (chosen == 0) & (low != 0)
            chosen = np.where(take, low, chosen)
            k -= 1
            remaining ^= low
        out[alive] = cur[alive] ^ chosen
        return out

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Hop distance = Hamming distance of the addresses."""
        diff = np.asarray(a, dtype=np.int64) ^ np.asarray(b, dtype=np.int64)
        # popcount via numpy bit tricks
        out = np.zeros_like(diff)
        while np.any(diff):
            out += diff & 1
            diff >>= 1
        return out

    def diameter(self) -> int:
        """Max hop distance = d."""
        return self.dimension

    def __repr__(self) -> str:
        return f"HypercubeTopology(dimension={self.dimension}, nodes={self.n_nodes})"


class TorusTopology:
    """The k x k 2-D torus: k^2 nodes, degree 4.

    Dimension-ordered greedy routing: correct the x coordinate (shorter
    wrap direction), then y.
    """

    def __init__(self, k: int):
        if k < 2:
            raise ValueError("side k must be >= 2")
        self.k = k
        self.n_nodes = k * k
        self.degree = 4

    @classmethod
    def at_least(cls, n: int) -> "TorusTopology":
        """Smallest square torus with >= n nodes."""
        return cls(max(2, int(np.ceil(np.sqrt(n)))))

    def neighbors(self, v: int) -> list[int]:
        """The four torus neighbours."""
        k = self.k
        x, y = v % k, v // k
        return [
            ((x + 1) % k) + y * k,
            ((x - 1) % k) + y * k,
            x + ((y + 1) % k) * k,
            x + ((y - 1) % k) * k,
        ]

    def _step_toward(self, cur: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """One coordinate step in the shorter wrap direction (0 if equal)."""
        k = self.k
        fwd = (dst - cur) % k
        back = (cur - dst) % k
        step = np.where(fwd == 0, 0, np.where(fwd <= back, 1, -1))
        return (cur + step) % k

    def vnext(self, cur: np.ndarray, dest: np.ndarray) -> np.ndarray:
        """Vectorized dimension-ordered next hop."""
        cur = np.asarray(cur, dtype=np.int64)
        dest = np.asarray(dest, dtype=np.int64)
        k = self.k
        cx, cy = cur % k, cur // k
        dx, dy = dest % k, dest // k
        move_x = cx != dx
        nx = np.where(move_x, self._step_toward(cx, dx), cx)
        ny = np.where(move_x, cy, self._step_toward(cy, dy))
        return nx + ny * k

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Manhattan distance with wraparound."""
        k = self.k
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        ax, ay = a % k, a // k
        bx, by = b % k, b // k
        dx = np.minimum((ax - bx) % k, (bx - ax) % k)
        dy = np.minimum((ay - by) % k, (by - ay) % k)
        return dx + dy

    def diameter(self) -> int:
        """2 * floor(k/2)."""
        return 2 * (self.k // 2)

    def __repr__(self) -> str:
        return f"TorusTopology(k={self.k}, nodes={self.n_nodes})"
