"""PRAM emulation on top of the memory-organization schemes.

The granularity problem exists because PRAM algorithms assume one
uniform shared memory while real machines have N separate modules; the
paper's scheme is the deterministic bridge.  This package closes the
loop: a :class:`~repro.pram.machine.PRAM` offers the classic
synchronous shared-memory steps (concurrent read, concurrent write with
a combining rule) and executes them through any
:class:`~repro.schemes.base.MemoryScheme` on the simulated MPC,
charging the real protocol cost for every step.

:mod:`repro.pram.algorithms` supplies textbook PRAM programs (parallel
prefix, pointer jumping / list ranking, parallel maximum) used by the
examples and the end-to-end tests.
"""

from repro.pram.machine import PRAM
from repro.pram.algorithms import (
    bitonic_sort,
    compact,
    list_ranking,
    odd_even_sort,
    parallel_max,
    prefix_sums,
)

__all__ = [
    "PRAM",
    "prefix_sums",
    "list_ranking",
    "parallel_max",
    "compact",
    "odd_even_sort",
    "bitonic_sort",
]
