"""Textbook PRAM algorithms executed through the simulated machine.

Each routine manipulates shared memory exclusively through
:class:`~repro.pram.machine.PRAM` steps, so the reported cost is the
true MPC cost of simulating that PRAM program under the chosen memory
organization -- the end-to-end quantity the paper's Theorem 1 is about.

Memory layout conventions are documented per function; all algorithms
assume the PRAM's shared memory is large enough (scheme.M >= layout).
"""

from __future__ import annotations

import numpy as np

from repro.pram.machine import PRAM

__all__ = [
    "prefix_sums",
    "list_ranking",
    "parallel_max",
    "compact",
    "odd_even_sort",
    "bitonic_sort",
]


def prefix_sums(pram: PRAM, data: np.ndarray, base: int = 0) -> np.ndarray:
    """Inclusive parallel prefix sums (Hillis-Steele doubling).

    Uses cells ``[base, base + n)``; runs ``ceil(log2 n)`` rounds of
    read-shift-add-write, each one PRAM read plus one PRAM write.
    Returns the prefix array (also left in shared memory).
    """
    data = np.asarray(data, dtype=np.int64)
    n = data.shape[0]
    if n == 0:
        return data.copy()
    pram.load(base, data)
    idx = np.arange(n, dtype=np.int64)
    shift = 1
    while shift < n:
        vals = pram.parallel_read(base + idx)
        add_src = idx - shift
        movers = add_src >= 0
        partners = pram.parallel_read(base + idx[movers] - shift)
        new_vals = vals.copy()
        new_vals[movers] += partners
        pram.parallel_write(base + idx, new_vals)
        shift *= 2
    return pram.dump(base, n)


def list_ranking(pram: PRAM, successor: np.ndarray, base: int = 0) -> np.ndarray:
    """List ranking by pointer jumping (Wyllie).

    ``successor[i]`` is the next node (the tail points to itself).
    Layout: cells ``[base, base+n)`` hold successors, ``[base+n,
    base+2n)`` hold ranks.  Returns the distance of each node to the
    tail, in ``ceil(log2 n)`` jump rounds -- the classic O(log n)
    CREW algorithm, here paying real MPC cost per round.
    """
    successor = np.asarray(successor, dtype=np.int64)
    n = successor.shape[0]
    if n == 0:
        return successor.copy()
    rank0 = (successor != np.arange(n)).astype(np.int64)
    succ_base, rank_base = base, base + n
    pram.load(succ_base, successor)
    pram.load(rank_base, rank0)
    idx = np.arange(n, dtype=np.int64)
    rounds = max(1, int(np.ceil(np.log2(max(2, n)))))
    for _ in range(rounds):
        succ = pram.parallel_read(succ_base + idx)
        rank = pram.parallel_read(rank_base + idx)
        succ_rank = pram.parallel_read(rank_base + succ)
        succ_succ = pram.parallel_read(succ_base + succ)
        new_rank = rank + np.where(succ != idx, succ_rank, 0)
        new_succ = np.where(succ != idx, succ_succ, succ)
        pram.parallel_write(rank_base + idx, new_rank)
        pram.parallel_write(succ_base + idx, new_succ)
    return pram.dump(rank_base, n)


def compact(pram: PRAM, data: np.ndarray, keep: np.ndarray, base: int = 0) -> np.ndarray:
    """Stream compaction: gather ``data[i]`` with ``keep[i]`` into a dense
    prefix, preserving order (the standard prefix-sum + scatter PRAM
    pattern).

    Layout: input in ``[base, base+n)``, prefix workspace in
    ``[base+n, base+2n)``, output in ``[base+2n, base+3n)``.
    """
    data = np.asarray(data, dtype=np.int64)
    keep = np.asarray(keep).astype(np.int64)
    if data.shape != keep.shape:
        raise ValueError("data and keep must have equal shape")
    n = data.shape[0]
    if n == 0:
        return data.copy()
    pram.load(base, data)
    positions = prefix_sums(pram, keep, base=base + n)  # inclusive counts
    total = int(positions[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64)
    idx = np.arange(n, dtype=np.int64)
    movers = keep.astype(bool)
    vals = pram.parallel_read(base + idx[movers])
    pram.parallel_write(base + 2 * n + positions[movers] - 1, vals)
    return pram.dump(base + 2 * n, total)


def odd_even_sort(pram: PRAM, data: np.ndarray, base: int = 0) -> np.ndarray:
    """Odd-even transposition sort: ``n`` synchronous compare-exchange
    rounds over shared memory (Habermann's classic PRAM/array sort).

    Layout: working array in ``[base, base + n)``.  Each round is two
    PRAM reads (the pair) and one write, all through the protocol.
    """
    data = np.asarray(data, dtype=np.int64)
    n = data.shape[0]
    if n <= 1:
        return data.copy()
    pram.load(base, data)
    for rnd in range(n):
        start = rnd % 2
        left = np.arange(start, n - 1, 2, dtype=np.int64)
        if left.size == 0:
            continue
        a = pram.parallel_read(base + left)
        b = pram.parallel_read(base + left + 1)
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        pram.parallel_write(
            np.concatenate([base + left, base + left + 1]),
            np.concatenate([lo, hi]),
        )
    return pram.dump(base, n)


def bitonic_sort(pram: PRAM, data: np.ndarray, base: int = 0) -> np.ndarray:
    """Batcher's bitonic sort: ``O(log^2 n)`` synchronous compare-exchange
    rounds -- the PRAM-idiomatic sorter (vs. the ``O(n)`` rounds of
    :func:`odd_even_sort`).

    Pads to the next power of two with +inf sentinels held privately
    (only the n real cells live in shared memory at ``[base, base+n)``).
    """
    data = np.asarray(data, dtype=np.int64)
    n = data.shape[0]
    if n <= 1:
        return data.copy()
    size = 1 << int(np.ceil(np.log2(n)))
    sentinel = np.int64(2**62)
    pram.load(base, data)
    # local mirror of the sentinel pad; every real-cell compare-exchange
    # goes through shared memory, sentinels are resolved locally
    pad_is_sentinel = np.zeros(size, dtype=bool)
    pad_is_sentinel[n:] = True

    k = 2
    while k <= size:
        j = k // 2
        while j >= 1:
            idx = np.arange(size, dtype=np.int64)
            partner = idx ^ j
            lower = idx < partner
            i_lo = idx[lower]
            i_hi = partner[lower]
            ascending = (i_lo & k) == 0
            both_real = ~pad_is_sentinel[i_lo] & ~pad_is_sentinel[i_hi]
            lo_real = i_lo[both_real]
            hi_real = i_hi[both_real]
            asc_real = ascending[both_real]
            if lo_real.size:
                a = pram.parallel_read(base + lo_real)
                b = pram.parallel_read(base + hi_real)
                swap = np.where(asc_real, a > b, a < b)
                new_a = np.where(swap, b, a)
                new_b = np.where(swap, a, b)
                pram.parallel_write(
                    np.concatenate([base + lo_real, base + hi_real]),
                    np.concatenate([new_a, new_b]),
                )
            # pairs with one sentinel: in an ascending region the sentinel
            # (+inf) belongs high; in a descending region it belongs low.
            one_sent = pad_is_sentinel[i_lo] ^ pad_is_sentinel[i_hi]
            for lo_i, hi_i, asc in zip(
                i_lo[one_sent], i_hi[one_sent], ascending[one_sent]
            ):
                sent_low = pad_is_sentinel[lo_i]
                want_sent_low = not asc
                if sent_low != want_sent_low:
                    # move the real value across (read+write through memory)
                    real_pos = int(hi_i if sent_low else lo_i)
                    other_pos = int(lo_i if sent_low else hi_i)
                    val = pram.parallel_read(np.array([base + real_pos]))
                    pram.parallel_write(np.array([base + other_pos]), val)
                    pad_is_sentinel[real_pos] = True
                    pad_is_sentinel[other_pos] = False
            j //= 2
        k *= 2
    _ = sentinel
    # real values occupy the first n cells of the ascending result
    assert not pad_is_sentinel[:n].any()
    return pram.dump(base, n)


def parallel_max(pram: PRAM, data: np.ndarray, base: int = 0) -> int:
    """Maximum by a binary reduction tree in shared memory.

    Layout: working array in ``[base, base + n)``; ``ceil(log2 n)``
    halving rounds.  Returns the maximum value.
    """
    data = np.asarray(data, dtype=np.int64)
    n = data.shape[0]
    if n == 0:
        raise ValueError("parallel_max of empty data")
    pram.load(base, data)
    width = n
    while width > 1:
        half = (width + 1) // 2
        left = np.arange(width // 2, dtype=np.int64)
        a = pram.parallel_read(base + left)
        b = pram.parallel_read(base + left + half)
        pram.parallel_write(base + left, np.maximum(a, b))
        width = half
    return int(pram.parallel_read(np.array([base]))[0])
