"""A synchronous PRAM whose shared memory lives on the simulated MPC.

Each PRAM step is one batched access: duplicate addresses are combined
first (the standard request-combining transformation that turns CRCW
into distinct-request traffic -- exactly the regime the paper's
protocol is specified for), the scheme's protocol runs on the MPC, and
the machine's clock advances by the measured MPC iteration count plus
the modeled per-phase overheads.
"""

from __future__ import annotations

import numpy as np

from repro.schemes.base import MemoryScheme

__all__ = ["PRAM"]


class PRAM:
    """Simulated PRAM over a pluggable memory-organization scheme.

    Parameters
    ----------
    scheme:
        Any :class:`~repro.schemes.base.MemoryScheme`; its ``M`` is the
        shared-memory size.
    combine:
        Concurrent-write resolution: ``'arbitrary'`` (lowest processor
        wins, the paper's MPC convention), ``'max'``, ``'min'``, or
        ``'sum'``.

    Attributes
    ----------
    mpc_iterations:
        Protocol iterations accumulated over all steps (raw MPC time).
    modeled_steps:
        Time in the paper's cost model, including cluster coordination
        and O(log N) address computation per phase.
    steps:
        Number of PRAM instructions executed.
    """

    def __init__(self, scheme: MemoryScheme, combine: str = "arbitrary"):
        if combine not in ("arbitrary", "max", "min", "sum"):
            raise ValueError(f"unknown combine rule {combine!r}")
        self.scheme = scheme
        self.combine = combine
        self.store = scheme.make_store()
        self.M = scheme.M
        self._time = 0
        self.steps = 0
        self.mpc_iterations = 0
        self.modeled_steps = 0

    # -- internal -----------------------------------------------------------

    def _combine_writes(
        self, addresses: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve concurrent writes to one (address, value) per cell."""
        order = np.argsort(addresses, kind="stable")
        addr_s, val_s = addresses[order], values[order]
        uniq, start = np.unique(addr_s, return_index=True)
        if self.combine == "arbitrary":
            return uniq, val_s[start]
        out = np.empty(uniq.shape[0], dtype=np.int64)
        bounds = np.append(start, addr_s.shape[0])
        for i in range(uniq.shape[0]):
            chunk = val_s[bounds[i] : bounds[i + 1]]
            if self.combine == "max":
                out[i] = chunk.max()
            elif self.combine == "min":
                out[i] = chunk.min()
            else:
                out[i] = chunk.sum()
        return uniq, out

    def _charge(self, result) -> None:
        self.steps += 1
        self._time += 1
        self.mpc_iterations += result.total_iterations
        self.modeled_steps += result.modeled_steps(self.scheme.N)

    # -- the PRAM instruction set ------------------------------------------------

    def parallel_read(self, addresses: np.ndarray) -> np.ndarray:
        """One synchronous concurrent-read step.

        ``addresses[i]`` is processor i's target; duplicates are combined
        into a single protocol request and the value is broadcast back.
        Unwritten cells read as -1.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return np.empty(0, dtype=np.int64)
        if np.any((addresses < 0) | (addresses >= self.M)):
            raise ValueError("address out of shared-memory range")
        uniq, inverse = np.unique(addresses, return_inverse=True)
        self._time += 1
        res = self.scheme.read(uniq, store=self.store, time=self._time)
        self._charge(res)
        return res.values[inverse]

    def parallel_write(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """One synchronous concurrent-write step with the machine's
        combining rule."""
        addresses = np.asarray(addresses, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if addresses.shape != values.shape:
            raise ValueError("addresses and values must have equal shape")
        if addresses.size == 0:
            return
        if np.any((addresses < 0) | (addresses >= self.M)):
            raise ValueError("address out of shared-memory range")
        uniq, vals = self._combine_writes(addresses, values)
        self._time += 1
        res = self.scheme.write(uniq, values=vals, store=self.store, time=self._time)
        self._charge(res)

    def load(self, base: int, data: np.ndarray) -> None:
        """Bulk-initialize shared memory ``[base, base + len(data))``."""
        data = np.asarray(data, dtype=np.int64)
        self.parallel_write(base + np.arange(data.shape[0], dtype=np.int64), data)

    def dump(self, base: int, count: int) -> np.ndarray:
        """Bulk-read shared memory ``[base, base + count)``."""
        return self.parallel_read(base + np.arange(count, dtype=np.int64))

    def cost_summary(self) -> dict:
        """Accumulated cost counters for reporting."""
        return {
            "pram_steps": self.steps,
            "mpc_iterations": self.mpc_iterations,
            "modeled_mpc_steps": self.modeled_steps,
            "scheme": getattr(self.scheme, "name", type(self.scheme).__name__),
        }

    def __repr__(self) -> str:
        return (
            f"PRAM(scheme={getattr(self.scheme, 'name', '?')}, M={self.M}, "
            f"steps={self.steps}, mpc_iterations={self.mpc_iterations})"
        )
