"""Canonical matrices of PGL2 over GF(2^m).

A PGL2 element is a nonsingular 2x2 matrix modulo scalars.  Following the
paper's convention, every element has a unique canonical representative
of one of two shapes:

* ``(a, b; c, 1)``  -- bottom-right entry 1 (when d != 0), or
* ``(a, b; 1, 0)``  -- bottom row (1, 0) (when d == 0; nonsingularity
  then forces b != 0 and, in this shape, c is scaled to 1).

Matrices are plain 4-tuples ``(a, b, c, d)`` of field codes for scalar
code, and 4 parallel numpy arrays for the vectorized hot path.  All
functions take the field as the first argument; nothing is cached on the
tuples, which keeps them hashable and cheap.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.gf.gf2m import GF2m

__all__ = [
    "Mat",
    "pgl2_identity",
    "pgl2_det",
    "pgl2_canon",
    "pgl2_mul",
    "pgl2_inv",
    "pgl2_order",
    "enumerate_pgl2",
    "vmul",
    "vcanon",
]

Mat = tuple[int, int, int, int]
"""A 2x2 matrix ``(a, b, c, d)`` over a GF2m field, row-major."""


def pgl2_identity() -> Mat:
    """The identity element of PGL2 (already canonical)."""
    return (1, 0, 0, 1)


def pgl2_det(F: GF2m, m: Mat) -> int:
    """Determinant ``a*d - b*c`` (== ``a*d + b*c`` in characteristic 2)."""
    a, b, c, d = m
    return F.add(F.mul(a, d), F.mul(b, c))


def pgl2_canon(F: GF2m, m: Mat) -> Mat:
    """Scale a nonsingular matrix to its canonical projective representative.

    Raises :class:`ValueError` on singular input.
    """
    a, b, c, d = m
    if pgl2_det(F, m) == 0:
        raise ValueError(f"singular matrix {m}")
    if d != 0:
        inv = F.inv(d)
        return (F.mul(a, inv), F.mul(b, inv), F.mul(c, inv), 1)
    # d == 0 forces b, c != 0; normalize bottom row to (1, 0).
    inv = F.inv(c)
    return (F.mul(a, inv), F.mul(b, inv), 1, 0)


def pgl2_mul(F: GF2m, m1: Mat, m2: Mat) -> Mat:
    """Product of two PGL2 elements, returned in canonical form."""
    a1, b1, c1, d1 = m1
    a2, b2, c2, d2 = m2
    prod = (
        F.add(F.mul(a1, a2), F.mul(b1, c2)),
        F.add(F.mul(a1, b2), F.mul(b1, d2)),
        F.add(F.mul(c1, a2), F.mul(d1, c2)),
        F.add(F.mul(c1, b2), F.mul(d1, d2)),
    )
    return pgl2_canon(F, prod)


def pgl2_inv(F: GF2m, m: Mat) -> Mat:
    """Inverse of a PGL2 element (adjugate works projectively), canonical."""
    a, b, c, d = m
    # adjugate = (d, -b; -c, a); char 2 drops the signs
    return pgl2_canon(F, (d, b, c, a))


def pgl2_order(k: int) -> int:
    """|PGL2(k)| = (k+1) * k * (k-1) = k^3 - k."""
    return k**3 - k


def enumerate_pgl2(F: GF2m) -> Iterator[Mat]:
    """Yield every element of PGL2 over ``F`` in canonical form.

    ``(a, b, c, 1)`` with ``a + b*c != 0`` (k^3 - k^2 matrices... more
    precisely all nonsingular ones), then ``(a, b, 1, 0)`` with ``b != 0``.
    Total count is ``k^3 - k``.
    """
    k = F.order
    for a in range(k):
        for b in range(k):
            bc_nonsingular_a = a  # det of (a,b;c,1) = a + b*c
            for c in range(k):
                if F.add(bc_nonsingular_a, F.mul(b, c)) != 0:
                    yield (a, b, c, 1)
    for a in range(k):
        for b in range(1, k):  # det of (a,b;1,0) = b
            yield (a, b, 1, 0)


# -- vectorized kernels -----------------------------------------------------


def vmul(
    F: GF2m,
    m1: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | Mat,
    m2: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | Mat,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized 2x2 matrix product over the field.

    Each operand is a 4-tuple of broadcastable int64 arrays (or plain
    ints); the result is NOT canonicalized -- compose :func:`vcanon` when
    projective representatives are needed.
    """
    a1, b1, c1, d1 = (np.asarray(x, dtype=np.int64) for x in m1)
    a2, b2, c2, d2 = (np.asarray(x, dtype=np.int64) for x in m2)
    return (
        F.vadd(F.vmul(a1, a2), F.vmul(b1, c2)),
        F.vadd(F.vmul(a1, b2), F.vmul(b1, d2)),
        F.vadd(F.vmul(c1, a2), F.vmul(d1, c2)),
        F.vadd(F.vmul(c1, b2), F.vmul(d1, d2)),
    )


def vcanon(
    F: GF2m, m: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized projective canonicalization of nonsingular matrices.

    Raises :class:`ValueError` if any matrix in the batch is singular.
    """
    a, b, c, d = (np.asarray(x, dtype=np.int64) for x in m)
    det = F.vadd(F.vmul(a, d), F.vmul(b, c))
    if np.any(det == 0):
        raise ValueError("singular matrix in vectorized canonicalization")
    d_zero = d == 0
    # scale factor: 1/d where d != 0, else 1/c (c != 0 is guaranteed there)
    denom = np.where(d_zero, c, d)
    inv = F.vinv(denom)
    return (
        F.vmul(a, inv),
        F.vmul(b, inv),
        np.where(d_zero, np.int64(1), F.vmul(c, inv)),
        np.where(d_zero, np.int64(0), np.int64(1)),
    )
