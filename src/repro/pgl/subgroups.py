"""The two subgroups of PGL2(q^n) that define the memory graph.

* ``H0 = PGL2(q)`` -- all projective matrices whose canonical entries lie
  in the subfield F_q (embedded in F_{q^n}).  Variables are the left
  cosets of H0; |H0| = q^3 - q.
* ``H_{n-1} = {(a, alpha; 0, 1) : a in F_q^*, alpha in F_{q^n}}`` --
  modules are the left cosets of H_{n-1}; |H_{n-1}| = (q-1) * q^n.

Both classes expose element enumeration (as canonical matrices over the
big field) and O(1) membership tests.
"""

from __future__ import annotations


from repro.gf.subfield import FieldEmbedding
from repro.pgl.matrix import Mat, enumerate_pgl2, pgl2_canon

__all__ = ["SubgroupH0", "SubgroupHn1"]


class SubgroupH0:
    """``H0 = PGL2(q)`` embedded in PGL2(q^n) via a subfield embedding.

    Parameters
    ----------
    embedding:
        A :class:`~repro.gf.subfield.FieldEmbedding` of F_q into F_{q^n}.
    """

    def __init__(self, embedding: FieldEmbedding):
        self.embedding = embedding
        self.Fq = embedding.K
        self.F = embedding.L
        self.q = self.Fq.order
        small_field = self.Fq
        emb = embedding.embed
        self._elements: tuple[Mat, ...] = tuple(
            (emb(a), emb(b), emb(c), emb(d))
            for (a, b, c, d) in enumerate_pgl2(small_field)
        )
        if len(self._elements) != self.q**3 - self.q:
            raise AssertionError("H0 enumeration has wrong size")
        self._element_set = frozenset(self._elements)

    @property
    def order(self) -> int:
        """|H0| = q^3 - q."""
        return self.q**3 - self.q

    def elements(self) -> tuple[Mat, ...]:
        """All elements as canonical matrices over the big field.

        Canonicality is preserved by the embedding because the canonical
        scaling (d=1 or c=1) is already fixed inside PGL2(q).
        """
        return self._elements

    def contains(self, m: Mat) -> bool:
        """Membership test: is the canonical matrix ``m`` in H0?

        Equivalent to all four canonical entries lying in the embedded
        subfield (canonical scaling maps F_q-matrices to F_q-matrices).
        """
        return m in self._element_set

    def __repr__(self) -> str:
        return f"SubgroupH0(q={self.q}, inside GF(2^{self.F.m}))"


class SubgroupHn1:
    """``H_{n-1} = {(a, alpha; 0, 1)}`` with a in F_q^*, alpha in F_{q^n}.

    The stabilizer subgroup whose left cosets are the memory modules.
    """

    def __init__(self, embedding: FieldEmbedding):
        self.embedding = embedding
        self.Fq = embedding.K
        self.F = embedding.L
        self.q = self.Fq.order

    @property
    def order(self) -> int:
        """|H_{n-1}| = (q - 1) * q^n."""
        return (self.q - 1) * self.F.order

    def elements(self) -> list[Mat]:
        """All elements as canonical matrices (enumerated lazily; the
        group can be large -- (q-1) * q^n)."""
        out = []
        for a_small in range(1, self.q):
            a = self.embedding.embed(a_small)
            for alpha in range(self.F.order):
                out.append(pgl2_canon(self.F, (a, alpha, 0, 1)))
        return out

    def contains(self, m: Mat) -> bool:
        """O(1) membership: canonical form must be (a, alpha; 0, 1) with
        ``a`` in the embedded F_q^*."""
        a, _b, c, d = m
        if c != 0 or d != 1:
            return False
        return a != 0 and self.embedding.contains(a)

    def __repr__(self) -> str:
        return f"SubgroupHn1(q={self.q}, inside GF(2^{self.F.m}))"
