"""The projective linear group PGL2 over GF(2^m) and its coset geometry.

The paper's memory-organization graph lives on two coset spaces of
``PGL2(q^n)``:

* variables  <-> left cosets of ``H0 = PGL2(q)`` (the subfield subgroup);
* modules    <-> left cosets of ``H_{n-1} = {(a, alpha; 0, 1)}``.

This package provides canonical projective matrices
(:mod:`repro.pgl.matrix`), the two subgroups (:mod:`repro.pgl.subgroups`),
closed-form and orbit-based coset canonicalization
(:mod:`repro.pgl.cosets`), and exhaustive enumeration for small parameter
sets used in validation (:mod:`repro.pgl.enumerate`).
"""

from repro.pgl.matrix import (
    pgl2_canon,
    pgl2_mul,
    pgl2_inv,
    pgl2_det,
    pgl2_identity,
    pgl2_order,
    enumerate_pgl2,
    vmul,
    vcanon,
)
from repro.pgl.subgroups import SubgroupH0, SubgroupHn1
from repro.pgl.cosets import ModuleCosets, VariableCosets

__all__ = [
    "pgl2_canon",
    "pgl2_mul",
    "pgl2_inv",
    "pgl2_det",
    "pgl2_identity",
    "pgl2_order",
    "enumerate_pgl2",
    "vmul",
    "vcanon",
    "SubgroupH0",
    "SubgroupHn1",
    "ModuleCosets",
    "VariableCosets",
]
