"""Exhaustive enumeration of the coset spaces (validation-scale only).

Brute-force enumeration of PGL2(q^n) and its two quotients.  Used by
tests and by Experiment E1/E10 to verify Fact 1 and the algebraic
neighbor formulas against ground truth.  Complexity is
Theta(|PGL2(q^n)|) = Theta(q^{3n}); intended for q^n <= 64.
"""

from __future__ import annotations

from repro.gf.gf2m import GF2m
from repro.pgl.cosets import ModuleCosets, VariableCosets
from repro.pgl.matrix import Mat, enumerate_pgl2
from repro.pgl.subgroups import SubgroupH0, SubgroupHn1

__all__ = [
    "enumerate_variable_cosets",
    "enumerate_module_cosets",
    "build_explicit_edges",
]


def enumerate_variable_cosets(F: GF2m, variables: VariableCosets) -> list[Mat]:
    """All variable cosets, each as its orbit-minimal canonical matrix.

    Returns a sorted list of length ``M``.
    """
    seen: set[Mat] = set()
    for m in enumerate_pgl2(F):
        seen.add(variables.canon(m))
    out = sorted(seen)
    if len(out) != variables.M:
        raise AssertionError(
            f"enumerated {len(out)} variable cosets, expected {variables.M}"
        )
    return out


def enumerate_module_cosets(F: GF2m, modules: ModuleCosets) -> list[Mat]:
    """All module cosets as their closed-form representatives, index order."""
    return [modules.rep_of(j) for j in range(modules.N)]


def build_explicit_edges(
    F: GF2m,
    H0: SubgroupH0,
    Hn1: SubgroupHn1,
    variables: VariableCosets,
    modules: ModuleCosets,
) -> set[tuple[Mat, int]]:
    """Ground-truth edge set by definition: ``(A H0, B H_{n-1})`` is an
    edge iff the cosets intersect.

    Every group element ``g`` lies in exactly one variable coset and one
    module coset, so iterating over PGL2(q^n) and pairing ``(coset keys)``
    enumerates the intersections directly.  Returns pairs of (canonical
    variable matrix, module index).
    """
    edges: set[tuple[Mat, int]] = set()
    for g in enumerate_pgl2(F):
        v = variables.canon(g)
        u = modules.index_of(g)
        edges.add((v, u))
    _ = H0, Hn1
    return edges
