"""Group-theoretic utilities for PGL2.

General tools the coset machinery doesn't need on its hot path but the
validation suite leans on: element orders, subgroup generation by
closure, subgroup axioms checks, and coset partition construction.
They give the tests an independent, definition-level view of H0 and
H_{n-1} against which the optimized code is compared.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.gf.gf2m import GF2m
from repro.pgl.matrix import Mat, pgl2_identity, pgl2_inv, pgl2_mul

__all__ = [
    "element_order",
    "generate_subgroup",
    "is_subgroup",
    "left_cosets",
    "conjugate",
    "centralizes",
]


def element_order(F: GF2m, m: Mat, cap: int = 1 << 22) -> int:
    """Multiplicative order of a PGL2 element (smallest k with m^k = 1)."""
    e = pgl2_identity()
    acc = m
    k = 1
    while acc != e:
        acc = pgl2_mul(F, acc, m)
        k += 1
        if k > cap:  # pragma: no cover
            raise RuntimeError("order exceeds cap")
    return k


def generate_subgroup(F: GF2m, generators: list[Mat], cap: int = 1 << 20) -> set[Mat]:
    """Closure of a generator set: the subgroup they generate (BFS over
    left multiplication; all elements canonical)."""
    from repro.pgl.matrix import pgl2_canon

    gens = [pgl2_canon(F, g) for g in generators]
    gens += [pgl2_inv(F, g) for g in gens]
    start = pgl2_identity()
    seen: set[Mat] = {start}
    frontier: deque[Mat] = deque([start])
    while frontier:
        cur = frontier.popleft()
        for g in gens:
            nxt = pgl2_mul(F, cur, g)
            if nxt not in seen:
                if len(seen) >= cap:  # pragma: no cover
                    raise RuntimeError("subgroup exceeds cap")
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def is_subgroup(F: GF2m, elements: set[Mat]) -> bool:
    """Check the subgroup axioms on a finite element set (identity,
    closure, inverses)."""
    if pgl2_identity() not in elements:
        return False
    ordered = sorted(elements)
    for a in ordered:
        if pgl2_inv(F, a) not in elements:
            return False
        for b in ordered:
            if pgl2_mul(F, a, b) not in elements:
                return False
    return True


def left_cosets(
    F: GF2m, subgroup: set[Mat], group_elements: Iterable[Mat]
) -> list[set[Mat]]:
    """Partition of the supplied group elements into left cosets
    ``g * subgroup``."""
    remaining = set(group_elements)
    out: list[set[Mat]] = []
    while remaining:
        # min() keeps the coset order deterministic (set pop order is
        # arbitrary across hash seeds)
        g = min(remaining)
        coset = {pgl2_mul(F, g, h) for h in subgroup}
        if not coset <= remaining:
            raise ValueError("elements are not a union of cosets")
        out.append(coset)
        remaining -= coset
    return out


def conjugate(F: GF2m, g: Mat, h: Mat) -> Mat:
    """``g h g^{-1}``."""
    return pgl2_mul(F, pgl2_mul(F, g, h), pgl2_inv(F, g))


def centralizes(F: GF2m, g: Mat, elements: set[Mat]) -> bool:
    """True iff g commutes with every element of the set."""
    return all(
        pgl2_mul(F, g, h) == pgl2_mul(F, h, g) for h in elements
    )
