"""Coset canonicalization for the two quotient spaces of PGL2(q^n).

Modules (cosets of ``H_{n-1}``) admit a *closed-form* canonicalization --
this is the performance-critical operation of the whole simulator, since
every copy access must map a matrix to its module index.  Following the
paper's representative system (eq. (1)) and index map ``f(s, t) =
s*(q^n + 1) + t + 1``:

* ``t = -1``: representative ``(gamma^s, 0; 0, 1)``;
* ``t >= 0``: representative ``(alpha_t, gamma^s; 1, 0)`` where
  ``alpha_t`` is the field element with integer code ``t``.

Given any nonsingular ``B = (x, y; z, v)``:

* if ``z == 0``: ``B H_{n-1}`` contains ``(x/v, 0; 0, 1)`` (choose alpha
  to cancel the top-right entry), so ``s = log(x/v) mod rho`` with
  ``rho = (q^n - 1)/(q - 1)`` and ``t = -1``;
* if ``z != 0``: choosing ``alpha = v/z`` inside ``H_{n-1}`` and scaling,
  the coset contains exactly ``(x/z, det/(z^2 a); 1, 0)`` for every
  ``a in F_q^*`` (characteristic 2 absorbs the paper's minus signs), so
  ``s = log(det / z^2) mod rho`` pins ``a = gamma^(L - s) in F_q^*`` and
  ``t = code(x / z)`` -- the top-left entry does not depend on ``a``.

Variables (cosets of ``H0``) use orbit-minimum canonicalization: |H0| =
q^3 - q is a small constant (6 for q = 2), so taking the lexicographic
minimum of ``A h`` over ``h in H0`` is O(1) field work.
"""

from __future__ import annotations

import numpy as np

from repro.gf.gf2m import GF2m
from repro.gf.subfield import FieldEmbedding
from repro.pgl.matrix import Mat, pgl2_det, pgl2_mul, vmul
from repro.pgl.subgroups import SubgroupH0

__all__ = ["ModuleCosets", "VariableCosets"]


class ModuleCosets:
    """Closed-form index map between matrices and module cosets.

    Parameters
    ----------
    F:
        The big field :math:`F_{q^n}` (a :class:`GF2m`).
    embedding:
        Embedding of F_q into F.

    Attributes
    ----------
    rho:
        ``(q^n - 1)/(q - 1)``, the number of ``s`` values.
    N:
        Number of modules, ``(q^n + 1) * rho``.
    """

    def __init__(self, F: GF2m, embedding: FieldEmbedding):
        if embedding.L is not F and embedding.L != F:
            raise ValueError("embedding target must be the big field")
        self.F = F
        self.embedding = embedding
        self.q = embedding.K.order
        qn = F.order
        self.rho = (qn - 1) // (self.q - 1)
        self.N = (qn + 1) * self.rho

    # -- scalar path ----------------------------------------------------

    def index_of(self, m: Mat) -> int:
        """Module index in ``[0, N)`` of the coset ``m H_{n-1}``."""
        s, t = self.st_of(m)
        return s * (self.F.order + 1) + t + 1

    def st_of(self, m: Mat) -> tuple[int, int]:
        """The pair ``(s, t)`` of the paper's representative system; t = -1
        selects the diagonal representative family."""
        F = self.F
        x, y, z, v = m
        if z == 0:
            if v == 0 or x == 0:
                raise ValueError(f"singular matrix {m}")
            s = F.log(F.div(x, v)) % self.rho
            return s, -1
        det = pgl2_det(F, m)
        if det == 0:
            raise ValueError(f"singular matrix {m}")
        L = F.log(F.div(det, F.mul(z, z)))
        s = L % self.rho
        beta = F.div(x, z)
        _ = y  # y only enters through det
        return s, beta

    def rep_of(self, index: int) -> Mat:
        """Canonical representative matrix of module ``index`` (paper eq. (1))."""
        if not 0 <= index < self.N:
            raise ValueError(f"module index {index} out of [0, {self.N})")
        qn1 = self.F.order + 1
        s, rem = divmod(index, qn1)
        t = rem - 1
        gs = self.F.exp(s)
        if t == -1:
            return (gs, 0, 0, 1)
        return (t, gs, 1, 0)

    def canon(self, m: Mat) -> Mat:
        """Canonical representative of the coset ``m H_{n-1}``."""
        return self.rep_of(self.index_of(m))

    # -- vectorized path --------------------------------------------------

    def vindex(
        self, m: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ) -> np.ndarray:
        """Vectorized :meth:`index_of` over batches of matrices.

        The hot kernel of the protocol simulator: maps every requested
        copy to its module id with pure table lookups.
        """
        F = self.F
        x, y, z, v = (np.asarray(w, dtype=np.int64) for w in m)
        _ = y
        z_zero = z == 0
        # Branch z == 0: s = log(x / v) mod rho, t = -1.
        safe_v = np.where(z_zero, v, np.int64(1))
        safe_x = np.where(z_zero, x, np.int64(1))
        if np.any((safe_v == 0) | (safe_x == 0)):
            raise ValueError("singular matrix in vindex (z == 0 branch)")
        s0 = np.mod(F.vlog(F.vdiv(safe_x, safe_v)), self.rho)
        # Branch z != 0.
        det = F.vadd(F.vmul(x, v), F.vmul(y, z))
        safe_z = np.where(z_zero, np.int64(1), z)
        safe_det = np.where(z_zero, np.int64(1), det)
        if np.any(safe_det == 0):
            raise ValueError("singular matrix in vindex (z != 0 branch)")
        L = F.vlog(F.vdiv(safe_det, F.vmul(safe_z, safe_z)))
        s1 = np.mod(L, self.rho)
        beta = F.vdiv(x, safe_z)
        qn1 = self.F.order + 1
        idx0 = s0 * qn1  # t = -1 contributes +0
        idx1 = s1 * qn1 + beta + 1
        return np.where(z_zero, idx0, idx1)

    def __repr__(self) -> str:
        return f"ModuleCosets(q={self.q}, q^n={self.F.order}, N={self.N})"


class VariableCosets:
    """Orbit-minimum canonicalization for variable cosets ``A H0``."""

    def __init__(self, F: GF2m, H0: SubgroupH0):
        self.F = F
        self.H0 = H0
        qn, q = F.order, H0.q
        # M = |PGL2(q^n)| / |PGL2(q)|
        self.M = ((qn + 1) * qn * (qn - 1)) // ((q + 1) * q * (q - 1))

    def canon(self, m: Mat) -> Mat:
        """Lexicographically minimal canonical matrix of the coset ``m H0``."""
        F = self.F
        best: Mat | None = None
        for h in self.H0.elements():
            cand = pgl2_mul(F, m, h)
            if best is None or cand < best:
                best = cand
        assert best is not None
        return best

    def key(self, m: Mat) -> int:
        """Pack the coset-canonical matrix into a single int (hashable id)."""
        a, b, c, d = self.canon(m)
        k = self.F.order
        return ((a * k + b) * k + c) * k + d

    def unkey(self, key: int) -> Mat:
        """Inverse of :meth:`key` (returns the canonical matrix)."""
        k = self.F.order
        key, d = divmod(key, k)
        key, c = divmod(key, k)
        a, b = divmod(key, k)
        return (a, b, c, d)

    def same_coset(self, m1: Mat, m2: Mat) -> bool:
        """True iff the two matrices generate the same variable coset."""
        return self.canon(m1) == self.canon(m2)

    def vkey_batch(self, mats: list[Mat]) -> np.ndarray:
        """Keys for a batch of matrices (loops scalar canon; batch sizes in
        the enumeration/validation paths are modest)."""
        return np.fromiter((self.key(m) for m in mats), dtype=np.int64, count=len(mats))

    def __repr__(self) -> str:
        return f"VariableCosets(q={self.H0.q}, q^n={self.F.order}, M={self.M})"
