"""Closed-loop load generator: millions of simulated clients.

Per-client coroutines do not scale to 10^6 clients in CPython, and they
would add nothing: a closed-loop client is a tiny state machine (submit
-> wait -> next op / retry).  The fleet therefore keeps every client's
state in numpy columns and drives the SAME :class:`ServiceCore` the
asyncio front end wraps -- admission control, fairness, sharding, the
watchdog, and latency accounting are identical; only the transport
differs.

The loop is strictly closed: a client submits its next request only
after its previous one completes, and the fleet respects backpressure
by holding clients in a ready-ring until the admission queue has room.
Retriable losses (quorum lost under faults) are resubmitted verbatim --
puts are idempotent under the largest-value rule, so retries are safe.

Fault legs:

* ``crash`` -- per-shard transient module crashes from a seeded
  :class:`~repro.mpc.faults.FaultSchedule` (exact repair lag), stepped
  every round.
* ``stale`` -- the q/2+1 stale-majority attack mounted mid-run on hot
  live keys (:mod:`repro.service.attack`); the streaming watchdog must
  flag it, pinned to (proc, round, var), while the run is in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover -- annotation-only import
    from repro.obs.perf import BenchRecorder

from repro.faults.report import QuorumLostError
from repro.mpc.faults import FaultSchedule
from repro.service.attack import StalePoisoning, poison_stale_majority
from repro.service.batcher import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    ServiceConfig,
    ServiceCore,
)
from repro.service.errors import STATUS_LOST
from repro.service.shards import ShardedKV
from repro.service.testing import AdmissibleOracle
from repro.workloads.generators import client_keys

__all__ = [
    "LoadConfig",
    "LoadReport",
    "client_values",
    "collision_free_keyspace",
    "run_load",
]

#: value bound used by generated workloads (fits protocol packing)
_VALUE_BOUND = 1 << 20


def collision_free_keyspace(
    store: ShardedKV, size: int, start: int = 0
) -> np.ndarray:
    """``size`` integer keys whose table fingerprints are unique within
    each shard.

    The store hashes keys to 31-bit fingerprints, so a ~10^5-key space
    is birthday-bound to contain a few aliased pairs -- distinct keys
    the table cannot tell apart (and a batch rejects).  Colliding keys
    are deterministically remapped to fresh integers until the set is
    clean; the result depends only on the store seeds and ``start``.
    """
    keys = np.arange(start, start + size, dtype=np.int64)
    next_candidate = start + size
    for _ in range(64):
        shard = store.route_ints(keys)
        bad = np.zeros(size, dtype=bool)
        for s in range(store.n_shards):
            m = np.nonzero(shard == s)[0]
            if not m.size:
                continue
            fps = store.shards[s].fingerprints(keys[m].tolist())
            order = np.argsort(fps, kind="stable")
            fs = fps[order]
            dup_sorted = np.r_[False, fs[1:] == fs[:-1]]
            bad[m[order[dup_sorted]]] = True
        n_bad = int(bad.sum())
        if n_bad == 0:
            return keys
        keys[bad] = np.arange(
            next_candidate, next_candidate + n_bad, dtype=np.int64
        )
        next_candidate += n_bad
    raise RuntimeError("could not de-alias keyspace")  # pragma: no cover


@dataclass(frozen=True)
class LoadConfig:
    """One closed-loop run: fleet size, workload mix, fault leg."""

    clients: int = 10_000
    ops_per_client: int = 2
    keyspace: int = 4096
    #: key mix: uniform | zipf | hotkey (adversarial contention)
    mix: str = "uniform"
    zipf_s: float = 1.2
    hot: int = 64
    hot_mass: float = 0.9
    get_fraction: float = 0.5
    delete_fraction: float = 0.02
    seed: int = 0
    #: safety stop (None = sized from the request count)
    max_rounds: int | None = None
    #: fault leg: none | crash | stale
    fault: str = "none"
    crash_rate: float = 0.001
    repair_lag: int = 3
    #: round the stale attack mounts (None = ~40% through the run)
    attack_round: int | None = None
    attack_victims: int = 3
    #: rounds the attack stays mounted after detection
    heal_after: int = 8
    #: replay completions through the admissible oracle (costs a
    #: python pass per get; the soak legs keep it on)
    oracle: bool = False
    #: progress-callback cadence, in rounds
    log_every: int = 25


@dataclass
class LoadReport:
    """Everything one run proved: throughput, tail latency, health."""

    clients: int
    total_requests: int
    completed: int
    retries: int
    lost: int
    rounds: int
    elapsed: float
    rounds_per_sec: float
    ops_per_sec: float
    latency: dict
    stats: dict
    mix: str
    fault: str
    violations: int
    events_dropped: int
    first_violation: dict | None = None
    detection: dict | None = None
    oracle_checked: int = 0
    oracle_mismatches: int = 0
    unfinished_clients: int = 0
    report_violations: int = 0

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return dict(self.__dict__)

    @property
    def fault_free_clean(self) -> bool:
        """Zero violations and zero dropped events (fault-free bar)."""
        return self.violations == 0 and self.events_dropped == 0

    def record_bench(self, recorder: "BenchRecorder") -> None:
        """Fold tail latency + throughput into a BENCH recorder.

        Latency percentiles go in as *sections* (wall times, lower is
        better -- the MAD regression gate applies); throughput figures
        are headline scalars.
        """
        lat = self.latency
        if lat.get("count"):
            recorder.observe("load.latency_p50", lat["p50"])
            recorder.observe("load.latency_p95", lat["p95"])
            recorder.observe("load.latency_p99", lat["p99"])
        recorder.scalar("load.clients", self.clients)
        recorder.scalar("load.requests", self.total_requests)
        recorder.scalar("load.rounds_per_sec", self.rounds_per_sec)
        recorder.scalar("load.ops_per_sec", self.ops_per_sec)
        recorder.scalar("load.retries", self.retries)
        recorder.scalar("load.violations", self.violations)


class _Ring:
    """Fixed-capacity FIFO ring of ready client ids (numpy-backed)."""

    def __init__(self, capacity: int):
        self._buf = np.empty(capacity + 1, dtype=np.int64)
        self._cap = capacity + 1
        self._head = 0
        self._tail = 0

    def __len__(self) -> int:
        return (self._tail - self._head) % self._cap

    def push(self, ids: np.ndarray) -> None:
        n = int(ids.size)
        if n == 0:
            return
        if len(self) + n >= self._cap:  # pragma: no cover -- sized to fleet
            raise RuntimeError("ready ring overflow")
        end = self._tail + n
        if end <= self._cap:
            self._buf[self._tail:end] = ids
        else:
            k = self._cap - self._tail
            self._buf[self._tail:] = ids[:k]
            self._buf[: end % self._cap] = ids[k:]
        self._tail = end % self._cap

    def pop(self, n: int) -> np.ndarray:
        n = min(n, len(self))
        if n == 0:
            return np.empty(0, dtype=np.int64)
        end = self._head + n
        if end <= self._cap:
            out = self._buf[self._head:end].copy()
        else:
            out = np.concatenate(
                [self._buf[self._head:], self._buf[: end % self._cap]]
            )
        self._head = end % self._cap
        return out


def _build_scripts(cfg: LoadConfig) -> tuple[np.ndarray, np.ndarray]:
    """Seeded per-(client, op) key indices and op codes."""
    total = cfg.clients * cfg.ops_per_client
    key_idx = client_keys(
        cfg.keyspace, total, mix=cfg.mix, seed=cfg.seed,
        s=cfg.zipf_s, hot=cfg.hot, hot_mass=cfg.hot_mass,
    ).reshape(cfg.clients, cfg.ops_per_client)
    rng = np.random.default_rng(cfg.seed + 1)
    r = rng.random(total).reshape(cfg.clients, cfg.ops_per_client)
    ops = np.full((cfg.clients, cfg.ops_per_client), OP_PUT, dtype=np.int64)
    ops[r < cfg.get_fraction] = OP_GET
    ops[r >= 1.0 - cfg.delete_fraction] = OP_DELETE
    return key_idx, ops


def client_values(
    clients: np.ndarray, cursor: np.ndarray, key_idx: np.ndarray
) -> np.ndarray:
    """Deterministic per-(client, op) put values -- stable across
    retries, distinct across writers, in ``[1, 2^20)``."""
    raw = (
        key_idx.astype(np.int64) * 2654435761
        + clients * 40503
        + cursor.astype(np.int64) * 97
    )
    return raw % (_VALUE_BOUND - 1) + 1


def run_load(
    cfg: LoadConfig,
    service: ServiceConfig | None = None,
    log: Callable[[str], None] | None = None,
) -> LoadReport:
    """Drive one closed-loop run; returns the :class:`LoadReport`."""
    svc_cfg = service or ServiceConfig()
    total = cfg.clients * cfg.ops_per_client
    max_rounds = cfg.max_rounds
    if max_rounds is None:
        est = total // max(1, svc_cfg.round_capacity) + 1
        max_rounds = 4 * est + 200
    core = ServiceCore(svc_cfg)
    with core:
        keyspace = collision_free_keyspace(core.store, cfg.keyspace)
        key_idx, op_script = _build_scripts(cfg)
        core.register_sessions(cfg.clients)
        cursor = np.zeros(cfg.clients, dtype=np.int64)
        retries = 0
        ring = _Ring(cfg.clients)
        ring.push(np.arange(cfg.clients, dtype=np.int64))
        done = 0
        put_seen = np.zeros(cfg.keyspace, dtype=bool)
        oracle = AdmissibleOracle() if cfg.oracle else None
        attack: StalePoisoning | None = None
        detection: dict | None = None
        heal_round: int | None = None
        attack_round = cfg.attack_round
        if cfg.fault == "stale" and attack_round is None:
            attack_round = max(2, (total // max(1, svc_cfg.round_capacity)) * 2 // 5)
        schedules = None
        if cfg.fault == "crash":
            schedules = [
                FaultSchedule(
                    core.store.shards[s].scheme.N,
                    cfg.crash_rate,
                    repair_lag=cfg.repair_lag,
                    seed=cfg.seed + 7 * s + 1,
                )
                for s in range(svc_cfg.n_shards)
            ]
        t0 = core.clock()
        while done < cfg.clients and core.rounds < max_rounds:
            # fault timeline: step the crash schedules each round
            if schedules is not None:
                for s, sched in enumerate(schedules):
                    failed = sched.step()
                    core.store.set_failed_modules(
                        s, failed if failed.size else None
                    )
            # mount the stale attack mid-run, on hot already-written keys
            if (
                cfg.fault == "stale"
                and attack is None
                and core.rounds >= (attack_round or 0)
            ):
                get_freq = np.bincount(
                    key_idx[op_script == OP_GET], minlength=cfg.keyspace
                )
                get_freq[~put_seen] = -1
                candidates = np.argsort(-get_freq)[: cfg.attack_victims]
                candidates = candidates[get_freq[candidates] > 0]
                try:
                    attack = poison_stale_majority(
                        core.store, keyspace[candidates], seed=cfg.seed
                    )
                except QuorumLostError:
                    # >q/2 modules already down on a victim shard: no
                    # stale majority can form; retry the mount next round
                    if log:
                        log(
                            f"round {core.rounds}: attack mount lost "
                            f"quorum; retrying next round"
                        )
                else:
                    if log:
                        log(
                            f"round {core.rounds}: mounted stale-majority "
                            f"attack on {attack.victims.size} victim key(s)"
                        )
            # detection check + scheduled heal
            if attack is not None and not attack.healed:
                wd = core.watchdog
                if detection is None and wd is not None and wd.violations_seen:
                    first, at_round = wd.first_violation  # type: ignore[misc]
                    detection = {
                        "service_round": core.rounds,
                        "stream_round": at_round,
                        "kind": first.kind,
                        "proc": first.proc,
                        "round": first.round,
                        "var": str(first.var),
                    }
                    heal_round = core.rounds + cfg.heal_after
                    if log:
                        log(
                            f"round {core.rounds}: watchdog flagged "
                            f"{first.kind} at (proc={first.proc}, "
                            f"round={first.round}, var={first.var})"
                        )
                if heal_round is not None and core.rounds >= heal_round:
                    try:
                        attack.heal(core.store)
                    except QuorumLostError:
                        # the victim shard lost its quorum mid-heal;
                        # the guard above retries on the next round
                        if log:
                            log(
                                f"round {core.rounds}: heal lost quorum; "
                                f"retrying next round"
                            )
                    else:
                        if log:
                            log(f"round {core.rounds}: attack healed")
            # closed loop: fill the admission queue from the ready ring
            ids = ring.pop(core.room)
            if ids.size:
                cur = cursor[ids]
                kidx = key_idx[ids, cur]
                ops_now = op_script[ids, cur]
                vals = client_values(ids, cur, kidx)
                accepted = core.submit_batch(
                    ids, ops_now, keyspace[kidx], vals
                )
                if not accepted.all():  # pragma: no cover -- room-checked
                    ring.push(ids[~accepted])
            try:
                res = core.run_round()
            except RuntimeError as e:
                if "table full" not in str(e):
                    raise
                raise ValueError(
                    f"store overflowed mid-run (capacity "
                    f"{core.store.capacity} slots, --keyspace "
                    f"{cfg.keyspace} distinct keys): add shards "
                    f"(--shards), grow the scheme (-n), or shrink "
                    f"--keyspace"
                ) from e
            if res is None:
                break
            if oracle is not None:
                oracle.apply_round(res)
            ok = np.asarray(res.status) != STATUS_LOST
            sess = np.asarray(res.session)
            # track which keys have a completed put (attack candidates)
            fin_puts = ok & (np.asarray(res.op) == OP_PUT)
            if fin_puts.any():
                put_seen[key_idx[sess[fin_puts], cursor[sess[fin_puts]]]] = True
            # lost requests retry verbatim; the rest advance
            retries += int((~ok).sum())
            cursor[sess[ok]] += 1
            finished = cursor[sess] >= cfg.ops_per_client
            done += int((ok & finished).sum())
            ring.push(sess[~(ok & finished)])
            if log and cfg.log_every and core.rounds % cfg.log_every == 0:
                log(
                    f"round {core.rounds}: {done}/{cfg.clients} clients "
                    f"done, {core.pending} pending, "
                    f"{core.lost} lost, {retries} retries"
                )
        elapsed = max(core.clock() - t0, 1e-9)
        stats = core.stats()
        wd = core.watchdog
        first_v = None
        if wd is not None and wd.first_violation is not None:
            v, at_round = wd.first_violation
            first_v = {
                "kind": v.kind,
                "proc": v.proc,
                "round": v.round,
                "var": str(v.var),
                "stream_round": at_round,
            }
        report = LoadReport(
            clients=cfg.clients,
            total_requests=total,
            completed=core.completed,
            retries=retries,
            lost=core.lost,
            rounds=core.rounds,
            elapsed=elapsed,
            rounds_per_sec=core.rounds / elapsed,
            ops_per_sec=core.completed / elapsed,
            latency=core.latency_summary(),
            stats=stats,
            mix=cfg.mix,
            fault=cfg.fault,
            violations=(
                wd.checker.n_violations if wd is not None else 0
            ),
            events_dropped=(
                wd.subscription.dropped if wd is not None else 0
            ),
            first_violation=first_v,
            detection=detection,
            oracle_checked=oracle.checked if oracle is not None else 0,
            oracle_mismatches=(
                len(oracle.mismatches) if oracle is not None else 0
            ),
            unfinished_clients=cfg.clients - done,
        )
    # the context exit ran watchdog.finish(); fold in any violations the
    # final window close surfaced
    if core.watchdog is not None:
        report.report_violations = core.watchdog.checker.n_violations
        report.violations = core.watchdog.checker.n_violations
        report.events_dropped = core.watchdog.subscription.dropped
    return report
