"""Sharded repository over parallel KV stores.

The paper sizes ONE memory organization for N' variables; a service
scales *out* by running S independent organizations side by side and
routing each key to the shard that owns it.  Every shard is a full
:class:`~repro.kvstore.store.ParallelKVStore` over its own
:class:`~repro.schemes.pp_adapter.PPAdapter` expander scheme, with its
own module set, its own MPC arbitration, and its own fault state --
faults in one shard cannot touch another's quorums.

Routing is a seeded stable hash of the key (NOT the store's table
fingerprint -- the two hashes are independent, so a probe-chain
pathology in a shard's table is uncorrelated with routing).  All shards
share one logical round clock (:meth:`ParallelKVStore.sync_clock`) so
the merged ``kv.op`` event stream stays totally ordered for the
streaming conformance checker.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from repro.kvstore.store import ParallelKVStore
from repro.schemes.pp_adapter import PPAdapter

__all__ = ["ShardedKV"]

#: splitmix64-style odd multiplier for the int-key routing hash
_ROUTE_MULT = np.uint64(0x9E3779B97F4A7C15)


class ShardedKV:
    """``n_shards`` independent parallel KV stores behind one key space.

    Parameters
    ----------
    n_shards:
        Worker shard count (>= 1).
    q, n:
        Paritition-pair expander parameters of each shard's
        ``PPAdapter(q, n)`` scheme (capacity ``M/2`` slots per shard).
    seed:
        Salts both the routing hash and each shard's table hash
        (shard ``i`` uses ``seed + i``).
    engine:
        Default batch executor threaded into every store operation
        (None = the ``$REPRO_ENGINE``/vector default).
    """

    def __init__(
        self,
        n_shards: int = 2,
        q: int = 2,
        n: int = 5,
        seed: int = 0,
        engine: str | None = None,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.seed = seed
        self.engine = engine
        schemes = [PPAdapter(q, n) for _ in range(n_shards)]
        # disjoint emitted-variable namespaces: the merged mem.op stream
        # must never alias two shards' variables in the checker
        self.shards = [
            ParallelKVStore(
                schemes[i], seed=seed + i, engine=engine,
                var_base=i * schemes[i].M,
            )
            for i in range(n_shards)
        ]
        self._route_salt = np.uint64((seed * 0x9E3779B1 + 0x85EBCA77) & (2**64 - 1))
        self._clock = max(s.clock for s in self.shards)

    # -- routing -----------------------------------------------------------

    def route_ints(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized shard id of each integer key."""
        h = (np.asarray(keys, dtype=np.int64).astype(np.uint64) + np.uint64(1)) * _ROUTE_MULT
        h ^= self._route_salt
        h ^= h >> np.uint64(29)
        h *= _ROUTE_MULT
        h ^= h >> np.uint64(32)
        return (h % np.uint64(self.n_shards)).astype(np.int64)

    def route_one(self, key: int | str) -> int:
        """Shard id of one int or str key."""
        if isinstance(key, (int, np.integer)):
            return int(self.route_ints(np.asarray([int(key)]))[0])
        h = hashlib.blake2b(
            str(key).encode(), digest_size=8,
            key=int(self._route_salt).to_bytes(8, "little"),
        ).digest()
        return int.from_bytes(h, "little") % self.n_shards

    # -- clocked batch operations -----------------------------------------

    def enter_shard(self, shard: int) -> ParallelKVStore:
        """The shard's store, clock-synced to the shared round order.

        Callers that drive a shard store directly (fault harnesses)
        must pair this with :meth:`leave_shard` so the shared clock
        absorbs the rounds they spent."""
        s = self.shards[shard]
        s.sync_clock(self._clock)
        return s

    def leave_shard(self, s: ParallelKVStore) -> None:
        """Fold a directly-driven shard's clock back into the order."""
        self._clock = max(self._clock, s.clock)

    def shard_get(
        self,
        shard: int,
        keys: Sequence[int | str],
        engine: str | None = None,
    ) -> np.ndarray:
        """Batched get on one shard under the shared round clock.

        Raises :class:`~repro.faults.report.QuorumLostError` if the
        shard's failed-module set leaves any touched variable without a
        read quorum -- callers own the retry/abort policy."""
        s = self.enter_shard(shard)
        try:
            return s.batch_get(keys, engine=engine)
        finally:
            self.leave_shard(s)

    def shard_put(
        self,
        shard: int,
        keys: Sequence[int | str],
        values: np.ndarray,
        engine: str | None = None,
    ) -> dict[str, int]:
        """Batched put on one shard under the shared round clock.

        Raises :class:`~repro.faults.report.QuorumLostError` if the
        shard cannot assemble a write quorum for a touched variable."""
        s = self.enter_shard(shard)
        try:
            return s.batch_put(keys, values, engine=engine)
        finally:
            self.leave_shard(s)

    def shard_delete(
        self,
        shard: int,
        keys: Sequence[int | str],
        engine: str | None = None,
    ) -> int:
        """Batched delete on one shard under the shared round clock.

        Raises :class:`~repro.faults.report.QuorumLostError` if the
        shard cannot assemble a quorum for a touched variable."""
        s = self.enter_shard(shard)
        try:
            return s.batch_delete(keys, engine=engine)
        finally:
            self.leave_shard(s)

    # -- fault surface ------------------------------------------------------

    def set_failed_modules(self, shard: int, failed: np.ndarray | None) -> None:
        """Install (or clear) one shard's failed-module set."""
        self.shards[shard].set_failed_modules(failed)

    # -- accounting ---------------------------------------------------------

    @property
    def clock(self) -> int:
        """The shared logical round clock."""
        return self._clock

    @property
    def capacity(self) -> int:
        """Total table slots across shards."""
        return sum(s.capacity for s in self.shards)

    @property
    def size(self) -> int:
        """Total live keys across shards."""
        return sum(s.size for s in self.shards)

    def cost_summary(self) -> dict:
        """Aggregated + per-shard simulated-machine cost."""
        per = [s.cost_summary() for s in self.shards]
        return {
            "n_shards": self.n_shards,
            "size": self.size,
            "capacity": self.capacity,
            "protocol_rounds": sum(p["protocol_rounds"] for p in per),
            "mpc_iterations": sum(p["mpc_iterations"] for p in per),
            "shards": per,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedKV(n_shards={self.n_shards}, size={self.size}, "
            f"capacity={self.capacity})"
        )
