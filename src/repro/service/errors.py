"""Service-boundary error taxonomy.

The protocol layer reports degraded state with
:class:`~repro.faults.report.QuorumLostError` -- a *machine* fact
(variables lost their read/write majority).  The service boundary maps
that onto client-visible semantics: every affected request is failed
with a **retriable** error, never answered from partial state.  A
client that sees :class:`RequestLost` may safely resubmit the same
operation (puts are idempotent per the largest-value arbitration rule).

Admission control speaks the same language: a full queue raises
:class:`Backpressure` (retriable -- try again after a round drains) and
an over-pipelined session raises :class:`PipelineFull` (a client flow
bug, not retriable as-is).
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "ServiceError",
    "RetriableError",
    "RequestLost",
    "Backpressure",
    "PipelineFull",
    "ServiceClosed",
    "STATUS_OK",
    "STATUS_LOST",
]

#: per-request completion codes used by the vectorized core
STATUS_OK = 0
#: quorum lost under module faults: declared, retriable, never silent
STATUS_LOST = 1


class ServiceError(Exception):
    """Base class for service-boundary failures."""

    #: True when the client may resubmit the identical request
    retriable = False


class RetriableError(ServiceError):
    """The request did not take effect and may be resubmitted."""

    retriable = True


class RequestLost(RetriableError):
    """The PRAM round executing this request lost its majority quorum
    (mapped from :class:`~repro.faults.report.QuorumLostError`)."""

    def __init__(
        self, message: str, shard: int = -1, keys: Iterable[int] = ()
    ) -> None:
        super().__init__(message)
        self.shard = int(shard)
        self.keys = tuple(keys)


class Backpressure(RetriableError):
    """Admission queue at capacity; resubmit after a round drains."""


class PipelineFull(ServiceError):
    """The session already has its full pipeline depth in flight."""


class ServiceClosed(ServiceError):
    """Submitted to a service that has been stopped."""
