"""Service-level q/2+1 stale-majority poisoning.

The one fault the majority-quorum protocol cannot mask: roll exactly
``q/2 + 1`` copies of a victim variable back to a coherent older
``(value, stamp)`` epoch and crash the remaining fresh copies.  Every
read quorum then consists of stale copies only, so the protocol
*silently* serves the old value -- no quorum loss, no degraded health,
nothing at the service boundary.  Only the streaming conformance
watchdog can catch it, by diffing the served answers against dict
semantics online.

This module mounts that attack on live service keys: it locates each
victim key's value variable (slot ``s`` -> variable ``2s + 1``) in its
shard's scheme, applies :class:`~repro.faults.models.StaleCopies` to
the raw copy store, and fails the fresh modules.  :meth:`heal`
reverses it -- clear the failed modules and rewrite the victims
through the protocol so every copy is fresh again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.models import FaultContext, StaleCopies
from repro.service.shards import ShardedKV

__all__ = ["StalePoisoning", "poison_stale_majority"]


@dataclass
class StalePoisoning:
    """A mounted attack: victims, their shards, and the undo state."""

    #: poisoned keys (present in the store at mount time)
    victims: np.ndarray
    #: shard id of each victim
    shards: np.ndarray
    #: the stale value each victim's read quorum now serves
    stale_values: np.ndarray
    #: the fresh (true) value of each victim at mount time
    fresh_values: np.ndarray
    #: emitted (namespaced) scheme variable holding each victim's value
    victim_vars: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    #: modules crashed per shard to cut the fresh copies out
    failed_by_shard: dict[int, np.ndarray] = field(default_factory=dict)
    #: total copies rolled back
    cells_rolled_back: int = 0
    healed: bool = False

    def expected_victims(self) -> set[str]:
        """Checker ``var`` coordinates a stale get will be pinned to
        (kv-level violations carry ``proc=-1`` and ``var=str(key)``)."""
        return {str(int(k)) for k in self.victims}

    def heal(self, store: ShardedKV) -> None:
        """Clear the crashed modules and rewrite every victim fresh.

        Raises :class:`~repro.faults.report.QuorumLostError` if other
        faults crashed past the quorum bound on a victim shard; the
        attack stays mounted so the caller can retry."""
        if self.healed:
            return
        for s, _failed in self.failed_by_shard.items():
            store.set_failed_modules(int(s), None)
        for s in np.unique(self.shards):
            m = self.shards == s
            store.shard_put(
                int(s), self.victims[m].tolist(), self.fresh_values[m]
            )
        self.healed = True


def poison_stale_majority(
    store: ShardedKV,
    keys: np.ndarray,
    seed: int = 0,
    stale_time: int = 1,
) -> StalePoisoning:
    """Mount the stale-majority attack on ``keys`` (live service keys).

    For each present key: roll ``q/2 + 1`` seeded copies of its value
    variable back to ``(fresh_value + 1, stale_time)`` and crash the
    modules holding the remaining fresh copies.  Keys not found in the
    table are skipped.  Returns the mounted :class:`StalePoisoning`
    (empty ``victims`` if none were present).

    Raises :class:`~repro.faults.report.QuorumLostError` if prior
    faults already broke a victim's read quorum -- the stale majority
    cannot be formed and nothing is mounted.
    """
    keys = np.asarray(keys, dtype=np.int64)
    shard_of = store.route_ints(keys)
    victims: list[int] = []
    v_shards: list[int] = []
    v_vars: list[int] = []
    stale_vals: list[int] = []
    fresh_vals: list[int] = []
    failed_by_shard: dict[int, np.ndarray] = {}
    rolled = 0
    for s in np.unique(shard_of):
        m = shard_of == s
        ks = keys[m].tolist()
        st = store.enter_shard(int(s))
        try:
            found, slot = st.locate(ks)
            if not found.any():
                continue
            ks_arr = keys[m][found]
            fresh = st.batch_get(ks_arr.tolist())
            # a coherent stale epoch: an always-wrong value, one per key
            stale = (fresh + 1) % (1 << 20)
            var_ids = 2 * slot[found] + 1
            scheme = st.scheme
            modules = scheme.placement(var_ids)
            phys = scheme.slots(var_ids, modules)
            majority = scheme.quorum_for("read")
            ctx = FaultContext(
                n_modules=scheme.N, module_ids=modules,
                majority=majority, slots=phys,
            )
            plan = StaleCopies(
                copies_per_victim=majority,
                victims=np.arange(var_ids.size),
            ).plan(ctx, intensity=1.0, seed=seed + int(s))
            rolled += StaleCopies.apply(
                plan, st.store, ctx, stale, stale_time
            )
            # crash the fresh complement of each victim's copy set
            rows, cols = plan.stale
            fresh_modules: list[np.ndarray] = []
            for v in range(var_ids.size):
                stale_cols = cols[rows == v]
                all_cols = np.arange(ctx.copies)
                fresh_cols = np.setdiff1d(all_cols, stale_cols)
                fresh_modules.append(modules[v, fresh_cols])
            failed = np.unique(np.concatenate(fresh_modules))
            failed_by_shard[int(s)] = failed
            st.set_failed_modules(failed)
            victims.extend(int(k) for k in ks_arr)
            v_shards.extend([int(s)] * ks_arr.size)
            v_vars.extend(int(v) + st.var_base for v in var_ids)
            stale_vals.extend(int(v) for v in stale)
            fresh_vals.extend(int(v) for v in fresh)
        finally:
            store.leave_shard(st)
    return StalePoisoning(
        victims=np.asarray(victims, dtype=np.int64),
        shards=np.asarray(v_shards, dtype=np.int64),
        victim_vars=np.asarray(v_vars, dtype=np.int64),
        stale_values=np.asarray(stale_vals, dtype=np.int64),
        fresh_values=np.asarray(fresh_vals, dtype=np.int64),
        failed_by_shard=failed_by_shard,
        cells_rolled_back=rolled,
    )
