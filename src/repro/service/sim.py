"""Deterministic asyncio scheduling for reproducible service tests.

Wall-clock event loops make async tests flaky twice over: timer
ordering depends on machine speed, and any jitter a test injects to
explore interleavings changes run to run.  This module removes both
sources:

* :class:`DeterministicEventLoop` runs on a **virtual clock**.  The
  selector never blocks; when only timers remain, the clock jumps
  exactly to the next deadline.  ``asyncio.sleep(d)`` therefore
  completes instantly in wall time but in precise ``d``-order -- the
  same schedule on every machine, every run.
* :func:`det_run` runs one coroutine on a fresh deterministic loop and
  hands it a **seeded** jitter stream, so a test that perturbs client
  timing (to reorder round composition) explores exactly the
  interleaving its seed names.

A loop with nothing runnable and no timers is *stalled* (this loop has
no external IO by construction); that raises instead of hanging, which
turns a lost-wakeup bug into an immediate test failure.
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Any, Awaitable, Callable

import numpy as np

__all__ = ["DeterministicEventLoop", "Jitter", "det_run"]


class _VirtualSelector(selectors.SelectSelector):
    """Selector that never blocks: it advances the loop's virtual clock
    by the requested timeout instead of sleeping."""

    def __init__(self, loop: "DeterministicEventLoop"):
        super().__init__()
        self._loop = loop

    def select(
        self, timeout: float | None = None
    ) -> list[tuple[selectors.SelectorKey, int]]:  # noqa: D102
        if timeout is None:
            raise RuntimeError(
                "deterministic loop stalled: nothing runnable and no timers"
            )
        if timeout > 0:
            self._loop.advance(timeout)
        return []


class DeterministicEventLoop(asyncio.SelectorEventLoop):
    """A selector event loop on a virtual, deterministically advancing
    clock (see module docstring)."""

    def __init__(self) -> None:
        self._vclock = 0.0
        super().__init__(_VirtualSelector(self))

    def time(self) -> float:
        """Virtual seconds since loop creation."""
        return self._vclock

    def advance(self, seconds: float) -> None:
        """Jump the virtual clock forward (monotone)."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._vclock += float(seconds)


class Jitter:
    """Seeded virtual-delay stream for interleaving exploration.

    ``await jitter()`` sleeps a seeded virtual duration in
    ``[0, scale)``; distinct seeds name distinct (but each fully
    reproducible) client schedules.
    """

    def __init__(self, seed: int = 0, scale: float = 1e-3):
        self._rng = np.random.default_rng(seed)
        self.scale = float(scale)

    def next_delay(self) -> float:
        """The next seeded delay, in virtual seconds."""
        return float(self._rng.random() * self.scale)

    def __call__(self) -> Awaitable[None]:
        return asyncio.sleep(self.next_delay())


def det_run(
    main: Callable[[Jitter], Awaitable[Any]] | Awaitable[Any],
    seed: int = 0,
) -> Any:
    """Run ``main`` to completion on a fresh deterministic loop.

    ``main`` may be a coroutine, or a callable taking the seeded
    :class:`Jitter` (so client tasks can perturb their schedules
    reproducibly).  Returns the coroutine's result.
    """
    loop = DeterministicEventLoop()
    coro = main(Jitter(seed)) if callable(main) else main
    try:
        return loop.run_until_complete(coro)
    finally:
        asyncio.set_event_loop(None)
        loop.close()
