"""Reference oracles for the service's round semantics.

Two replay models, both driven by the :class:`RoundResult` completions
the core hands back:

* :class:`SerialOracle` -- the fault-free model: a plain dict replayed
  with the documented round semantics (gets see pre-round state; put
  conflicts resolve largest-value-then-lowest-session; deletes last).
  Every completed response must match it exactly.
* :class:`AdmissibleOracle` -- the degraded-mode model: a declared-lost
  batch *may or may not* have reached the store (a quorum can be lost
  after some copies were written), so each key tracks the **set** of
  admissible values.  A successful get must observe an admissible
  value.  The set is monotone between commits: an observation does NOT
  collapse it, because a latent partially-written copy carries a fresh
  timestamp and wins any later quorum it happens to join while losing
  any it misses -- under flapping modules the served value can
  legitimately oscillate between the old and the declared-lost write.
  Only a *committed* (fully acknowledged) put pins the set again: its
  majority-fresh timestamps dominate every earlier latent copy of the
  value variable.  A key that may have been absent when a put was lost
  keeps ``-1`` admissible (a torn insert can leave the key's
  fingerprint claimed with the value cell unwritten); a lost delete
  keeps ``-1`` admissible the same way (a torn tombstone).  This is the
  machine-checkable form of "degraded answers are correct or declared
  lost, never silently wrong".

  One documented blind spot: a *committed delete* followed by a *lost
  insert* can recycle the key's slot and expose the pre-delete value
  through the still-populated value cell.  The model does not track
  previous tenants, so that (very rare) interleaving would surface as
  a false mismatch; fault-free legs cover deletes exactly via
  :class:`SerialOracle`.
"""

from __future__ import annotations

import numpy as np

from repro.service.batcher import OP_DELETE, OP_GET, OP_PUT, RoundResult
from repro.service.errors import STATUS_LOST, STATUS_OK

__all__ = ["SerialOracle", "AdmissibleOracle", "Mismatch"]

_MISSING = -1


class Mismatch:
    """One response that disagreed with the oracle."""

    def __init__(
        self, round_id: int, session: int, op: int, key: int,
        observed: int, expected: int,
    ) -> None:
        self.round_id = int(round_id)
        self.session = int(session)
        self.op = int(op)
        self.key = int(key)
        self.observed = int(observed)
        self.expected = expected

    def __repr__(self) -> str:
        return (
            f"Mismatch(round={self.round_id}, session={self.session}, "
            f"op={self.op}, key={self.key}, observed={self.observed}, "
            f"expected={self.expected})"
        )


def _put_winners(
    keys: np.ndarray, values: np.ndarray, sessions: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(winning keys, winning values): largest value, lowest session."""
    order = np.lexsort((sessions, -values, keys))
    ks = keys[order]
    lead = np.r_[True, ks[1:] != ks[:-1]]
    return ks[lead], values[order][lead]


class SerialOracle:
    """Dict replay of the fault-free round semantics."""

    def __init__(self) -> None:
        self.model: dict[int, int] = {}
        self.mismatches: list[Mismatch] = []
        self.checked = 0

    def apply_round(self, res: RoundResult, max_keep: int = 16) -> int:
        """Replay one round; returns the number of fresh mismatches."""
        before = len(self.mismatches)
        ok = np.asarray(res.status) == STATUS_OK
        op = np.asarray(res.op)
        key = np.asarray(res.key)
        val = np.asarray(res.value)
        sess = np.asarray(res.session)
        # gets observe the pre-round model
        for i in np.nonzero(ok & (op == OP_GET))[0]:
            expected = self.model.get(int(key[i]), _MISSING)
            self.checked += 1
            if int(val[i]) != expected and len(self.mismatches) < max_keep:
                self.mismatches.append(
                    Mismatch(res.round_id, sess[i], OP_GET, key[i],
                             val[i], expected)
                )
        # puts: one winner per key
        p = ok & (op == OP_PUT)
        if p.any():
            wk, wv = _put_winners(key[p], val[p], sess[p])
            for k, v in zip(wk, wv):
                self.model[int(k)] = int(v)
        # deletes last
        for i in np.nonzero(ok & (op == OP_DELETE))[0]:
            self.model.pop(int(key[i]), None)
        return len(self.mismatches) - before

    @property
    def ok(self) -> bool:
        """No response has disagreed with the model."""
        return not self.mismatches


class AdmissibleOracle:
    """Set-valued replay tolerating declared-lost uncertainty."""

    def __init__(self) -> None:
        #: key -> set of admissible values (absent key = {missing})
        self.model: dict[int, set[int]] = {}
        #: keys where a torn insert/tombstone may read back as missing
        #: even after a later committed update-path put
        self.sticky_absent: set[int] = set()
        self.mismatches: list[Mismatch] = []
        self.checked = 0

    def _admissible(self, key: int) -> set[int]:
        adm = self.model.get(key, {_MISSING})
        if key in self.sticky_absent:
            return adm | {_MISSING}
        return adm

    def apply_round(self, res: RoundResult, max_keep: int = 16) -> int:
        """Replay one round; returns the number of fresh mismatches."""
        before = len(self.mismatches)
        status = np.asarray(res.status)
        ok = status == STATUS_OK
        lost = status == STATUS_LOST
        op = np.asarray(res.op)
        key = np.asarray(res.key)
        val = np.asarray(res.value)
        sess = np.asarray(res.session)
        # successful gets: the observation must be admissible.  It does
        # NOT shrink the set -- with no read-repair, a latent partial
        # copy keeps oscillating in and out of later quorums.
        for i in np.nonzero(ok & (op == OP_GET))[0]:
            k = int(key[i])
            adm = self._admissible(k)
            self.checked += 1
            if int(val[i]) not in adm and len(self.mismatches) < max_keep:
                self.mismatches.append(
                    Mismatch(res.round_id, sess[i], OP_GET, k,
                             val[i], sorted(adm))
                )
        # puts: committed batches pin the winner (their majority-fresh
        # stamps dominate every older latent copy); lost batches *may*
        # have applied their winner (the store dedups before writing),
        # and a torn insert can leave the key probing as absent
        p = op == OP_PUT
        if p.any():
            wk, wv = _put_winners(key[p], val[p], sess[p])
            lost_keys = set(int(k) for k in key[lost & p])
            for k, v in zip(wk, wv):
                k, v = int(k), int(v)
                if k in lost_keys:
                    adm = self._admissible(k)
                    if _MISSING in adm:
                        self.sticky_absent.add(k)
                    self.model[k] = adm | {v}
                else:
                    self.model[k] = {v}
        # deletes: committed pin missing; lost may have torn-tombstoned
        # the fingerprint cell, which no later update-path put rewrites
        for i in np.nonzero(ok & (op == OP_DELETE))[0]:
            k = int(key[i])
            self.model[k] = {_MISSING}
            self.sticky_absent.discard(k)
        for i in np.nonzero(lost & (op == OP_DELETE))[0]:
            k = int(key[i])
            self.model[k] = self._admissible(k) | {_MISSING}
            self.sticky_absent.add(k)
        return len(self.mismatches) - before

    @property
    def ok(self) -> bool:
        """Every delivered answer was admissible."""
        return not self.mismatches
