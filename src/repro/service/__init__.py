"""Served mode: the access protocol as a sharded batched KV service.

The paper's protocol is a batch scheduler; :mod:`repro.service` turns
it into a service stack with the classic three-layer split:

* **protocol** -- :mod:`repro.core` / :mod:`repro.schemes` execute one
  deterministic majority-quorum round;
* **repository** -- :class:`~repro.service.shards.ShardedKV` scales out
  across independent per-shard organizations behind one key space;
* **service** -- :class:`~repro.service.batcher.ServiceCore` batches
  concurrent sessions into PRAM rounds under admission control, with
  the streaming conformance watchdog wired onto the service event bus.

Front ends: :class:`~repro.service.service.KVService` (asyncio
sessions) and :func:`~repro.service.loadgen.run_load` (the vectorized
closed-loop fleet behind ``repro load``).
"""

from repro.service.batcher import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    RoundResult,
    ServiceConfig,
    ServiceCore,
)
from repro.service.errors import (
    Backpressure,
    PipelineFull,
    RequestLost,
    RetriableError,
    ServiceClosed,
    ServiceError,
)
from repro.service.loadgen import LoadConfig, LoadReport, run_load
from repro.service.service import KVService, Session
from repro.service.shards import ShardedKV

__all__ = [
    "OP_GET",
    "OP_PUT",
    "OP_DELETE",
    "ServiceConfig",
    "ServiceCore",
    "RoundResult",
    "ServiceError",
    "RetriableError",
    "RequestLost",
    "Backpressure",
    "PipelineFull",
    "ServiceClosed",
    "ShardedKV",
    "KVService",
    "Session",
    "LoadConfig",
    "LoadReport",
    "run_load",
]
