"""Asyncio front end over the deterministic service core.

:class:`KVService` owns a single driver task that turns queued
submissions into PRAM rounds: every request submitted while a round
executes lands in a later round, which is exactly the paper's batch
model -- concurrency comes from *batching*, not from interleaving
store mutations.  Sessions therefore see strictly serializable
behaviour with no locks anywhere.

The transport is in-process (this is a simulation repo): client
coroutines hold a :class:`Session` and await ``get``/``put``/
``delete``.  Each call returns an :class:`asyncio.Future` resolved when
the request's round completes; with ``pipeline_depth > 1`` a session
may hold several futures and overlap rounds (``submit`` is the
non-awaiting surface).  Admission control surfaces as exceptions from
:mod:`repro.service.errors`; a round that loses its majority quorum
resolves the affected futures with :class:`RequestLost` -- retriable,
never silently wrong.
"""

from __future__ import annotations

import asyncio
import time as _time
from typing import Callable

from repro.service.batcher import (
    OP_DELETE,
    OP_GET,
    OP_NAMES,
    OP_PUT,
    RoundResult,
    ServiceConfig,
    ServiceCore,
)

from repro.service.errors import STATUS_LOST, RequestLost, ServiceClosed

__all__ = ["KVService", "Session"]


class Session:
    """One client's handle: a dense id plus the submit surface."""

    def __init__(self, service: "KVService", session_id: int):
        self._service = service
        self.id = int(session_id)

    def submit(self, op: int, key: int, value: int = 0) -> "asyncio.Future[int]":
        """Enqueue one request; the future resolves at round completion.

        Raises ``PipelineFull`` past the configured pipeline depth and
        ``Backpressure`` when the admission queue is full.
        """
        return self._service._submit(self.id, op, key, value)

    async def get(self, key: int) -> int:
        """Value of ``key`` (-1 when missing) as of the serving round."""
        return await self.submit(OP_GET, key)

    async def put(self, key: int, value: int) -> int:
        """Write ``key``; acks the submitted value (same-round conflicts
        are resolved by largest-value-then-lowest-session arbitration)."""
        return await self.submit(OP_PUT, key, value)

    async def delete(self, key: int) -> int:
        """Delete ``key`` (idempotent ack)."""
        return await self.submit(OP_DELETE, key)

    def __repr__(self) -> str:
        return f"Session(id={self.id})"


class KVService:
    """The served mode: sharded batched KV behind concurrent sessions.

    Async context manager::

        async with KVService(ServiceConfig(n_shards=2)) as svc:
            s = svc.session()
            await s.put(7, 42)
            assert await s.get(7) == 42
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] = _time.perf_counter,
    ):
        self.core = ServiceCore(config, clock=clock)
        self._futures: dict[int, asyncio.Future] = {}
        self._work: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "KVService":
        """Open the core (bus + watchdog) and start the round driver.

        Raises :class:`ServiceClosed` if a concurrent :meth:`stop` is
        still draining the driver -- returning the half-closed service
        would hand the caller a handle whose submissions all fail.
        """
        if self._task is not None:
            if self._closed:
                raise ServiceClosed("service is stopping")
            return self
        self.core.open()
        self._closed = False
        self._work = asyncio.Event()
        self._task = asyncio.create_task(self._drive(), name="kv-round-driver")
        return self

    async def stop(self) -> None:
        """Drain pending rounds, stop the driver, close the core."""
        task = self._task
        if task is None:
            return
        self._closed = True
        assert self._work is not None
        self._work.set()
        await task
        if self._task is not task:
            # a concurrent stop() finished the teardown while we waited
            return
        self._task = None
        for fut in self._futures.values():
            if not fut.done():
                fut.set_exception(ServiceClosed("service stopped"))
        self._futures.clear()
        self.core.close()

    async def __aenter__(self) -> "KVService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- client surface ----------------------------------------------------

    def session(self) -> Session:
        """Open a new session (dense id, own fairness/pipeline slot)."""
        sid = int(self.core.register_sessions(1)[0])
        return Session(self, sid)

    def _submit(self, session: int, op: int, key: int, value: int) -> asyncio.Future:
        if self._closed or self._task is None:
            raise ServiceClosed("service is not running")
        seq = self.core.submit(session, op, int(key), int(value))
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[seq] = fut
        assert self._work is not None
        self._work.set()
        return fut

    # -- driver ------------------------------------------------------------

    async def _drive(self) -> None:
        assert self._work is not None
        while not (self._closed and self.core.pending == 0):
            await self._work.wait()
            self._work.clear()
            # one scheduler pass of batching window: submissions already
            # runnable this tick join the same first round
            await asyncio.sleep(0)
            while self.core.pending:
                res = self.core.run_round()
                if res is not None:
                    self._complete(res)
                # let resolved clients run (and possibly resubmit)
                await asyncio.sleep(0)
            if self._closed:
                break

    def _complete(self, res: RoundResult) -> None:
        for i in range(res.seq.size):
            fut = self._futures.pop(int(res.seq[i]), None)
            if fut is None or fut.done():  # pragma: no cover -- cancelled
                continue
            if int(res.status[i]) == STATUS_LOST:
                fut.set_exception(
                    RequestLost(
                        f"{OP_NAMES[int(res.op[i])]} of key "
                        f"{int(res.key[i])} lost its quorum in round "
                        f"{res.round_id}",
                        keys=(int(res.key[i]),),
                    )
                )
            else:
                fut.set_result(int(res.value[i]))

    # -- passthroughs ------------------------------------------------------

    def stats(self) -> dict:
        """Service counters + repository cost + watchdog health."""
        return self.core.stats()

    def latency_summary(self) -> dict:
        """p50/p95/p99 over completed requests so far (seconds)."""
        return self.core.latency_summary()
