"""Deterministic round scheduler: requests -> PRAM rounds.

The paper's access protocol is a batch scheduler -- it turns N
concurrent requests into one deterministic majority-quorum round.  This
module is the service-side half of that bargain: it collects in-flight
get/put/delete requests from many sessions, admits a bounded batch per
round (FIFO with per-session fairness), combines same-key requests the
way the MPC model combines same-cell requests, and executes the batch
against the sharded repository.

Admission-control policy
------------------------
* **Bounded queue**: at most ``max_pending`` requests wait; submission
  beyond that is refused (backpressure) -- the queue can never grow
  without bound, so checker lag and memory stay bounded too.
* **Per-session fairness**: one request per session per round.  A round
  is composed of the *oldest* waiting request of each session, oldest
  sessions first, truncated at ``round_capacity`` -- a chatty session
  cannot starve a quiet one.
* **Pipelining**: a session may keep ``pipeline_depth`` requests in
  flight (submitted, not yet completed); with depth D a session can
  have one request admitted per round while D-1 more wait, hiding the
  round latency.

Conflict semantics (documented, mirrored by the serial oracle)
--------------------------------------------------------------
Within one round, gets execute first (they observe the pre-round
state), then puts, then deletes.  Same-key puts in one round are
combined to a single winner -- **largest value, then lowest session
id** -- the same largest-wins rule the protocol's MPC arbitration
applies to concurrent same-cell writes; losing puts still ack OK (their
write happened and was superseded within the round).  Same-key deletes
combine trivially.

A shard batch that raises
:class:`~repro.faults.report.QuorumLostError` fails *every* request of
that batch with ``STATUS_LOST`` (retriable): degraded answers are
declared, never served from partial state.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

import repro.obs as _obs
from repro.conformance.streaming import Watchdog
from repro.faults.report import QuorumLostError
from repro.obs.stream import EventBus
from repro.service.errors import STATUS_LOST, STATUS_OK
from repro.service.shards import ShardedKV

__all__ = [
    "OP_GET",
    "OP_PUT",
    "OP_DELETE",
    "OP_NAMES",
    "ServiceConfig",
    "RoundResult",
    "ServiceCore",
]

#: request op codes used by the vectorized queues
OP_GET, OP_PUT, OP_DELETE = 0, 1, 2
OP_NAMES = ("get", "put", "delete")


@dataclass(frozen=True)
class ServiceConfig:
    """Sizing and policy knobs of one service instance."""

    #: worker shard count (independent schemes, arbitration, faults)
    n_shards: int = 2
    #: partition-pair parameters of each shard's ``PPAdapter(q, n)``
    q: int = 2
    n: int = 5
    #: max requests admitted into one PRAM round
    round_capacity: int = 1024
    #: admission-queue bound (backpressure beyond this)
    max_pending: int = 4096
    #: in-flight requests allowed per session
    pipeline_depth: int = 1
    #: batch executor (None = ``$REPRO_ENGINE``/vector default)
    engine: str | None = None
    #: salts the routing and table hashes
    seed: int = 0
    #: attach the streaming watchdog to a service-owned event bus
    watchdog: bool = True
    #: streaming-checker round window
    window: int = 8
    #: listed-violation cap (detection keeps counting past it)
    max_violations: int = 100
    #: watchdog subscription capacity (None = sized from round_capacity)
    bus_capacity: int | None = None
    #: health-snapshot cadence in service rounds (0 = never)
    snapshot_every: int = 8

    def resolve_bus_capacity(self) -> int:
        """Queue depth that cannot overflow between per-batch polls."""
        if self.bus_capacity is not None:
            return self.bus_capacity
        return 4 * self.round_capacity + 4096


@dataclass
class RoundResult:
    """Completions of one executed round (aligned arrays)."""

    round_id: int
    seq: np.ndarray
    session: np.ndarray
    op: np.ndarray
    key: np.ndarray
    status: np.ndarray
    value: np.ndarray
    latency: np.ndarray

    @property
    def admitted(self) -> int:
        """Requests executed this round."""
        return int(self.seq.size)

    @property
    def lost(self) -> int:
        """Requests declared lost (quorum loss) this round."""
        return int((self.status == STATUS_LOST).sum())


@dataclass
class _Queue:
    """Pending-request columns (chunked struct-of-arrays FIFO)."""

    sess: list = field(default_factory=list)
    op: list = field(default_factory=list)
    key: list = field(default_factory=list)
    val: list = field(default_factory=list)
    seq: list = field(default_factory=list)
    stamp: list = field(default_factory=list)
    count: int = 0

    def push(
        self,
        sess: np.ndarray,
        op: np.ndarray,
        key: np.ndarray,
        val: np.ndarray,
        seq: np.ndarray,
        stamp: np.ndarray,
    ) -> None:
        self.sess.append(sess)
        self.op.append(op)
        self.key.append(key)
        self.val.append(val)
        self.seq.append(seq)
        self.stamp.append(stamp)
        self.count += int(sess.size)

    def concat(self) -> tuple[np.ndarray, ...]:
        out = tuple(
            np.concatenate(col) if len(col) != 1 else col[0]
            for col in (
                self.sess, self.op, self.key, self.val, self.seq, self.stamp
            )
        )
        return out

    def replace(
        self,
        sess: np.ndarray,
        op: np.ndarray,
        key: np.ndarray,
        val: np.ndarray,
        seq: np.ndarray,
        stamp: np.ndarray,
    ) -> None:
        self.sess = [sess]
        self.op = [op]
        self.key = [key]
        self.val = [val]
        self.seq = [seq]
        self.stamp = [stamp]
        self.count = int(sess.size)

    def clear(self) -> None:
        self.replace(*(np.empty(0, dtype=np.int64) for _ in range(5)),
                     np.empty(0, dtype=np.float64))


class ServiceCore:
    """Synchronous, deterministic service engine.

    Owns the sharded repository, the admission queue, the round loop,
    per-request latency accounting, and (optionally) the streaming
    watchdog wired onto a service-owned event bus.  The asyncio front
    end (:mod:`repro.service.service`) and the closed-loop load
    generator (:mod:`repro.service.loadgen`) are thin drivers around
    this core, so both transports share one verified round semantics.

    Use as a context manager (or call :meth:`open`/:meth:`close`): the
    event bus is installed process-wide via :func:`repro.obs.set_bus`
    while the service runs and restored on close.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] = _time.perf_counter,
    ):
        self.config = config or ServiceConfig()
        self.store = ShardedKV(
            n_shards=self.config.n_shards,
            q=self.config.q,
            n=self.config.n,
            seed=self.config.seed,
            engine=self.config.engine,
        )
        self.clock = clock
        self.rounds = 0
        self.completed = 0
        self.lost = 0
        self.rejected = 0
        self._queue = _Queue()
        self._queue.clear()
        self._seq = 0
        self._outstanding = np.zeros(0, dtype=np.int64)
        self._lat_chunks: list[np.ndarray] = []
        self._open = False
        self._bus: EventBus | None = None
        self._prev_bus: EventBus | None = None
        self.watchdog: Watchdog | None = None

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "ServiceCore":
        """Install the event bus + watchdog and start serving."""
        if self._open:
            return self
        if self.config.watchdog:
            self._bus = EventBus()
            self._prev_bus = _obs.set_bus(self._bus)
            self.watchdog = Watchdog(
                self._bus,
                window=self.config.window,
                max_violations=self.config.max_violations,
                queue_capacity=self.config.resolve_bus_capacity(),
            )
        self._open = True
        return self

    def close(self) -> None:
        """Finish the watchdog and restore the previous event bus."""
        if not self._open:
            return
        self._open = False
        if self.watchdog is not None:
            self.watchdog.poll()
            self.watchdog.finish()
            self.watchdog.detach()
        if self.config.watchdog:
            _obs.set_bus(self._prev_bus)
            self._prev_bus = None
            self._bus = None

    def __enter__(self) -> "ServiceCore":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sessions ----------------------------------------------------------

    @property
    def n_sessions(self) -> int:
        """Registered sessions (dense ids ``0..n_sessions-1``)."""
        return int(self._outstanding.size)

    def register_sessions(self, count: int) -> np.ndarray:
        """Allocate ``count`` new dense session ids."""
        if count < 0:
            raise ValueError("count must be >= 0")
        start = self._outstanding.size
        self._outstanding = np.concatenate(
            [self._outstanding, np.zeros(count, dtype=np.int64)]
        )
        return np.arange(start, start + count, dtype=np.int64)

    # -- submission (admission control) ------------------------------------

    @property
    def pending(self) -> int:
        """Requests waiting in the admission queue."""
        return self._queue.count

    @property
    def room(self) -> int:
        """Queue slots left before backpressure."""
        return max(0, self.config.max_pending - self._queue.count)

    def submit_batch(
        self,
        sessions: np.ndarray,
        ops: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        stamp: float | None = None,
    ) -> np.ndarray:
        """Enqueue a vector of requests; returns the accepted mask.

        Requests are refused (mask False) when the session would exceed
        ``pipeline_depth`` or the queue is at ``max_pending`` -- the
        queue-room cut keeps FIFO order (a prefix of the remaining
        candidates is taken).  ``stamp`` is the submission clock reading
        used for latency accounting (one reading per batch: the batch
        arrived together).
        """
        sessions = np.asarray(sessions, dtype=np.int64)
        ops = np.asarray(ops, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        n = sessions.size
        if not (ops.size == keys.size == values.size == n):
            raise ValueError("request columns must have equal length")
        if n == 0:
            return np.zeros(0, dtype=bool)
        if sessions.size and (
            sessions.min() < 0 or sessions.max() >= self.n_sessions
        ):
            raise ValueError("unregistered session id in batch")
        # pipeline-depth filter: position of each request within its
        # session's slice of this batch, compared against head-room
        order = np.argsort(sessions, kind="stable")
        ss = sessions[order]
        boundary = np.r_[True, ss[1:] != ss[:-1]]
        grp = np.cumsum(boundary) - 1
        first_of_grp = np.nonzero(boundary)[0]
        pos = np.arange(n, dtype=np.int64) - first_of_grp[grp]
        depth_ok_sorted = (
            self._outstanding[ss] + pos < self.config.pipeline_depth
        )
        ok = np.empty(n, dtype=bool)
        ok[order] = depth_ok_sorted
        # queue-room cut: accept a FIFO prefix of the depth-ok requests
        room = self.room
        if int(ok.sum()) > room:
            idx = np.nonzero(ok)[0]
            ok[idx[room:]] = False
        if not ok.any():
            self.rejected += int(n)
            return ok
        self.rejected += int(n - ok.sum())
        sess = sessions[ok]
        accepted = int(sess.size)
        seqs = np.arange(self._seq, self._seq + accepted, dtype=np.int64)
        self._seq += accepted
        np.add.at(self._outstanding, sess, 1)
        t = self.clock() if stamp is None else float(stamp)
        self._queue.push(
            sess, ops[ok], keys[ok], values[ok], seqs,
            np.full(accepted, t, dtype=np.float64),
        )
        return ok

    def submit(self, session: int, op: int, key: int, value: int = 0) -> int:
        """Enqueue one request; returns its sequence number.

        Raises the admission errors of :mod:`repro.service.errors`
        instead of returning a mask (the asyncio front end's surface).
        """
        from repro.service import errors

        if self._outstanding[session] >= self.config.pipeline_depth:
            raise errors.PipelineFull(
                f"session {session} already has "
                f"{int(self._outstanding[session])} request(s) in flight"
            )
        if self.room < 1:
            self.rejected += 1
            raise errors.Backpressure(
                f"admission queue full ({self.config.max_pending} pending)"
            )
        seq = self._seq
        ok = self.submit_batch(
            np.asarray([session]), np.asarray([op]),
            np.asarray([key]), np.asarray([value]),
        )
        assert bool(ok[0])
        return seq

    # -- the round loop ----------------------------------------------------

    def _poll(self) -> None:
        if self.watchdog is not None:
            self.watchdog.poll()

    def run_round(self) -> RoundResult | None:
        """Admit one fair batch, execute it as PRAM rounds, complete it.

        Returns None when the queue is empty.
        """
        if self._queue.count == 0:
            return None
        sess, op, key, val, seq, stamp = self._queue.concat()
        # fairness: the oldest waiting request of each session, oldest
        # first (np.unique yields each session's first occurrence in
        # arrival order), truncated at round_capacity
        _, first_idx = np.unique(sess, return_index=True)
        first_idx.sort()
        admit_idx = first_idx[: self.config.round_capacity]
        mask = np.zeros(sess.size, dtype=bool)
        mask[admit_idx] = True
        self._queue.replace(
            sess[~mask], op[~mask], key[~mask], val[~mask], seq[~mask],
            stamp[~mask],
        )
        a_sess = sess[admit_idx]
        a_op = op[admit_idx]
        a_key = key[admit_idx]
        a_val = val[admit_idx]
        a_seq = seq[admit_idx]
        a_stamp = stamp[admit_idx]
        self.rounds += 1
        status = np.full(a_sess.size, STATUS_OK, dtype=np.int64)
        result = np.full(a_sess.size, -1, dtype=np.int64)
        shard = self.store.route_ints(a_key)
        engine = self.config.engine
        for s in range(self.config.n_shards):
            in_s = shard == s
            if not in_s.any():
                continue
            # gets observe the pre-round state of this shard
            g = in_s & (a_op == OP_GET)
            if g.any():
                uk, inv = np.unique(a_key[g], return_inverse=True)
                try:
                    result[g] = self.store.shard_get(s, uk, engine=engine)[inv]
                except QuorumLostError:
                    status[g] = STATUS_LOST
                self._poll()
            # puts: combine same-key writes to one winner (largest
            # value, then lowest session id -- the arbitration rule)
            p = in_s & (a_op == OP_PUT)
            if p.any():
                idx = np.nonzero(p)[0]
                order = np.lexsort((a_sess[idx], -a_val[idx], a_key[idx]))
                k_sorted = a_key[idx][order]
                lead = np.r_[True, k_sorted[1:] != k_sorted[:-1]]
                win = idx[order[lead]]
                # echo the request's own value even when the batch is
                # declared lost: a lost write may still have partially
                # reached the store, and degraded-mode oracles need the
                # attempted value to track what could resurface
                result[p] = a_val[p]
                try:
                    self.store.shard_put(
                        s, a_key[win], a_val[win], engine=engine
                    )
                except QuorumLostError:
                    status[p] = STATUS_LOST
                self._poll()
            # deletes come last (a put+delete round ends deleted)
            d = in_s & (a_op == OP_DELETE)
            if d.any():
                uk = np.unique(a_key[d])
                try:
                    self.store.shard_delete(s, uk, engine=engine)
                    result[d] = 1
                except QuorumLostError:
                    status[d] = STATUS_LOST
                self._poll()
        lat = np.maximum(self.clock() - a_stamp, 0.0)
        np.add.at(self._outstanding, a_sess, -1)
        self._lat_chunks.append(lat.astype(np.float64))
        self.completed += int(a_sess.size)
        self.lost += int((status == STATUS_LOST).sum())
        if self.watchdog is not None:
            self.watchdog.poll()
            every = self.config.snapshot_every
            if every and self.rounds % every == 0:
                self.watchdog.snapshot()
        return RoundResult(
            round_id=self.rounds,
            seq=a_seq,
            session=a_sess,
            op=a_op,
            key=a_key,
            status=status,
            value=result,
            latency=lat,
        )

    def drain(self, max_rounds: int | None = None) -> list[RoundResult]:
        """Run rounds until the queue empties (or ``max_rounds``)."""
        out: list[RoundResult] = []
        while self._queue.count:
            if max_rounds is not None and len(out) >= max_rounds:
                break
            res = self.run_round()
            if res is None:  # pragma: no cover -- count checked above
                break
            out.append(res)
        return out

    # -- accounting --------------------------------------------------------

    def latency_summary(self) -> dict:
        """p50/p95/p99 (and mean/max) of completed-request latency, in
        seconds, over every completion so far."""
        if not self._lat_chunks:
            return {"count": 0}
        lat = np.concatenate(self._lat_chunks)
        p50, p95, p99 = np.percentile(lat, [50.0, 95.0, 99.0])
        return {
            "count": int(lat.size),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "mean": float(lat.mean()),
            "max": float(lat.max()),
        }

    def stats(self) -> dict:
        """Service counters + repository cost + watchdog health."""
        out = {
            "rounds": self.rounds,
            "completed": self.completed,
            "lost": self.lost,
            "rejected": self.rejected,
            "pending": self.pending,
            "store": self.store.cost_summary(),
        }
        if self.watchdog is not None:
            out["watch"] = {
                "violations": self.watchdog.checker.n_violations,
                "events_dropped": self.watchdog.subscription.dropped,
                "checker_lag": self.watchdog.checker.lag_rounds,
                "state_size": self.watchdog.checker.state_size,
            }
        return out
